#include "stq/core/sharded_server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <sstream>
#include <utility>

#include "stq/common/alloc_stats.h"
#include "stq/common/check.h"
#include "stq/geo/geometry.h"

namespace stq {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Accumulates the enclosing scope's wall time into a TickStats field.
class PhaseTimer {
 public:
  explicit PhaseTimer(double* sink)
      : sink_(sink), start_(std::chrono::steady_clock::now()) {}
  ~PhaseTimer() {
    *sink_ += std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - start_)
                  .count();
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  double* sink_;
  std::chrono::steady_clock::time_point start_;
};

// Exact squared distance from `p` to the closed rect `r`; 0 when inside.
// Uses the same subtract-then-square arithmetic as SquaredDistance so an
// object sitting on the nearest rect corner produces bit-identical
// distances — the k-NN shard-skip rule stays exact under FP rounding.
double RectDistance2(const Rect& r, const Point& p) {
  const double dx = std::max({0.0, r.min_x - p.x, p.x - r.max_x});
  const double dy = std::max({0.0, r.min_y - p.y, p.y - r.max_y});
  return dx * dx + dy * dy;
}

// One per-shard answer-stream delta during the merge: shard updates carry
// +1/-1, move-away captures carry -1.
struct MergeEntry {
  QueryId q = 0;
  ObjectId o = 0;
  int d = 0;
};

// An (object-driven) k-NN dirtiness event: the locations an object report
// touched this tick. Mirrors the single-grid engine, where a removal
// re-tests the old location and an upsert both the old membership and the
// new candidate probes against each answer circle.
struct KnnEvent {
  Point old_loc;
  Point new_loc;
  bool has_old = false;
  bool has_new = false;
};

// Snapshot of a query that is unregistered (or unregistered and
// re-registered) within this tick. The single-grid engine ships phase-1
// removal negatives for the OLD incarnation and, on re-registration, a
// fresh full-answer positive stream — neither follows the plain refcount
// transition rule, so these queries are merged specially.
struct Reset {
  QueryId qid = 0;
  std::vector<ObjectId> old_members;  // sorted committed answer at tick start
};

}  // namespace

// Tick-scoped working buffers, reused across EvaluateTick calls. Every
// container is cleared (never shrunk) before use, so the steady-state
// tick allocates only when a buffer outgrows its previous high-water
// mark. Defined here because MergeEntry/Reset/KnnEvent are local to this
// translation unit.
struct ShardedEngine::TickScratch {
  std::vector<PendingObjectUpsert> upserts;
  std::vector<ObjectId> removals;
  std::vector<PendingQueryChange> query_changes;
  std::vector<char> touched;
  std::vector<MergeEntry> entries;
  std::vector<Reset> resets;
  FlatSet<QueryId> reset_qids;
  FlatSet<ObjectId> global_removals;
  std::vector<FlatSet<ObjectId>> removed_from;
  std::vector<KnnEvent> events;
  std::vector<int> ticked;
  std::vector<TickResult> shard_results;
  std::vector<double> shard_walls;
  ShardList route_ns;  // routing fan-out of the report being dispatched
  std::vector<QueryId> knn_dirty_ids;
};

ShardedEngine::~ShardedEngine() = default;

ShardedEngine::ShardedEngine(const QueryProcessorOptions& options)
    : options_(options),
      map_(options.bounds, options.num_shards),
      history_(options.record_history ? std::make_unique<HistoryStore>()
                                      : nullptr),
      pool_(ThreadPool::ResolveWorkers(options.worker_threads) > 1
                ? std::make_unique<ThreadPool>(
                      ThreadPool::ResolveWorkers(options.worker_threads))
                : nullptr) {
  STQ_CHECK(options_.Validate()) << "invalid QueryProcessorOptions";
  STQ_CHECK(options_.num_shards >= 2)
      << "ShardedEngine requires num_shards >= 2";
  // Keep the global grid resolution roughly constant: each shard covers
  // 1/sx x 1/sy of the universe, so it needs proportionally fewer cells.
  const int max_dim = std::max(map_.sx(), map_.sy());
  const int per_shard_cells =
      std::max(1, (options_.grid_cells_per_side + max_dim - 1) / max_dim);
  for (int s = 0; s < map_.num_shards(); ++s) {
    QueryProcessorOptions so;
    so.bounds = map_.shard_rect(s);
    so.grid_cells_per_side = per_shard_cells;
    so.prediction_horizon = options_.prediction_horizon;
    so.record_history = false;  // history lives at the router
    so.wire_cost = options_.wire_cost;
    so.worker_threads = 1;  // shards tick in parallel, each serially
    so.num_shards = 1;
    // Replica positions must stay exact: clamp to the universe, never to
    // the shard's sub-rect.
    so.location_clamp_bounds = options_.bounds;
    shards_.push_back(std::make_unique<QueryProcessor>(so));
  }
  scratch_ = std::make_unique<TickScratch>();
}

// ---------------------------------------------------------------------------
// Report ingestion (mirrors QueryProcessor bit for bit)
// ---------------------------------------------------------------------------

double ShardedEngine::LatestKnownReportTime(ObjectId id) const {
  if (buffer_.HasPendingRemove(id)) return -kInf;
  if (const PendingObjectUpsert* u = buffer_.FindPendingUpsert(id);
      u != nullptr) {
    return u->t;
  }
  if (auto it = objects_.find(id); it != objects_.end()) return it->second.t;
  return -kInf;
}

Point ShardedEngine::ClampLocation(const Point& loc) const {
  return Point{std::clamp(loc.x, options_.bounds.min_x, options_.bounds.max_x),
               std::clamp(loc.y, options_.bounds.min_y,
                          options_.bounds.max_y)};
}

Rect ShardedEngine::ClampRegion(const Rect& region) const {
  return region.Intersection(options_.bounds);
}

Status ShardedEngine::UpsertObject(ObjectId id, const Point& loc,
                                   Timestamp t) {
  if (t < LatestKnownReportTime(id)) {
    return Status::InvalidArgument("stale object report");
  }
  buffer_.AddObjectUpsert(PendingObjectUpsert{id, ClampLocation(loc),
                                              Velocity{}, t,
                                              /*predictive=*/false});
  return Status::OK();
}

Status ShardedEngine::UpsertPredictiveObject(ObjectId id, const Point& loc,
                                             const Velocity& vel,
                                             Timestamp t) {
  if (t < LatestKnownReportTime(id)) {
    return Status::InvalidArgument("stale object report");
  }
  buffer_.AddObjectUpsert(PendingObjectUpsert{id, ClampLocation(loc), vel, t,
                                              /*predictive=*/true});
  return Status::OK();
}

Status ShardedEngine::RemoveObject(ObjectId id) {
  const bool exists_in_store = objects_.contains(id);
  if (!exists_in_store && !buffer_.HasPendingUpsert(id)) {
    std::ostringstream os;
    os << "object " << id << " unknown";
    return Status::NotFound(os.str());
  }
  buffer_.AddObjectRemove(id, exists_in_store);
  return Status::OK();
}

Status ShardedEngine::ValidateQueryRegistration(QueryId id) const {
  const bool live_in_store =
      queries_.contains(id) && !buffer_.HasPendingQueryUnregister(id);
  if (live_in_store || buffer_.HasPendingQueryRegister(id)) {
    std::ostringstream os;
    os << "query " << id << " already registered";
    return Status::AlreadyExists(os.str());
  }
  return Status::OK();
}

Result<QueryKind> ShardedEngine::EffectiveQueryKind(QueryId id) const {
  if (const PendingQueryChange* pending = buffer_.FindPendingQueryChange(id);
      pending != nullptr) {
    switch (pending->kind) {
      case QueryChangeKind::kRegisterRange:
        return QueryKind::kRange;
      case QueryChangeKind::kRegisterKnn:
        return QueryKind::kKnn;
      case QueryChangeKind::kRegisterPredictive:
        return QueryKind::kPredictiveRange;
      case QueryChangeKind::kRegisterCircle:
        return QueryKind::kCircleRange;
      case QueryChangeKind::kUnregister: {
        std::ostringstream os;
        os << "query " << id << " pending unregistration";
        return Status::NotFound(os.str());
      }
      case QueryChangeKind::kMove:
        break;  // fall through to the routed kind
    }
  }
  if (auto it = queries_.find(id); it != queries_.end()) {
    return it->second.kind;
  }
  std::ostringstream os;
  os << "query " << id << " unknown";
  return Status::NotFound(os.str());
}

Status ShardedEngine::RegisterRangeQuery(QueryId id, const Rect& region) {
  const Rect clamped = ClampRegion(region);
  if (clamped.IsEmpty()) {
    return Status::InvalidArgument(
        "range query region must overlap the space bounds");
  }
  STQ_RETURN_IF_ERROR(ValidateQueryRegistration(id));
  PendingQueryChange c;
  c.kind = QueryChangeKind::kRegisterRange;
  c.id = id;
  c.region = clamped;
  buffer_.AddQueryChange(c, queries_.contains(id));
  return Status::OK();
}

Status ShardedEngine::MoveRangeQuery(QueryId id, const Rect& region) {
  const Rect clamped = ClampRegion(region);
  if (clamped.IsEmpty()) {
    return Status::InvalidArgument(
        "range query region must overlap the space bounds");
  }
  Result<QueryKind> kind = EffectiveQueryKind(id);
  if (!kind.ok()) return kind.status();
  if (*kind != QueryKind::kRange) {
    return Status::InvalidArgument("query is not a range query");
  }
  PendingQueryChange c;
  c.kind = QueryChangeKind::kMove;
  c.id = id;
  c.region = clamped;
  buffer_.AddQueryChange(c, queries_.contains(id));
  return Status::OK();
}

Status ShardedEngine::RegisterKnnQuery(QueryId id, const Point& center,
                                       int k) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  STQ_RETURN_IF_ERROR(ValidateQueryRegistration(id));
  PendingQueryChange c;
  c.kind = QueryChangeKind::kRegisterKnn;
  c.id = id;
  c.center = center;
  c.k = k;
  buffer_.AddQueryChange(c, queries_.contains(id));
  return Status::OK();
}

Status ShardedEngine::MoveKnnQuery(QueryId id, const Point& center) {
  Result<QueryKind> kind = EffectiveQueryKind(id);
  if (!kind.ok()) return kind.status();
  if (*kind != QueryKind::kKnn) {
    return Status::InvalidArgument("query is not a k-NN query");
  }
  PendingQueryChange c;
  c.kind = QueryChangeKind::kMove;
  c.id = id;
  c.center = center;
  buffer_.AddQueryChange(c, queries_.contains(id));
  return Status::OK();
}

Status ShardedEngine::RegisterCircleQuery(QueryId id, const Point& center,
                                          double radius) {
  if (radius <= 0.0) {
    return Status::InvalidArgument("circle radius must be positive");
  }
  if (ClampRegion(Circle{center, radius}.BoundingBox()).IsEmpty()) {
    return Status::InvalidArgument(
        "circle query must overlap the space bounds");
  }
  STQ_RETURN_IF_ERROR(ValidateQueryRegistration(id));
  PendingQueryChange c;
  c.kind = QueryChangeKind::kRegisterCircle;
  c.id = id;
  c.center = center;
  c.radius = radius;
  buffer_.AddQueryChange(c, queries_.contains(id));
  return Status::OK();
}

Status ShardedEngine::MoveCircleQuery(QueryId id, const Point& center) {
  Result<QueryKind> kind = EffectiveQueryKind(id);
  if (!kind.ok()) return kind.status();
  if (*kind != QueryKind::kCircleRange) {
    return Status::InvalidArgument("query is not a circular range query");
  }
  double radius = 0.0;
  if (const PendingQueryChange* pending = buffer_.FindPendingQueryChange(id);
      pending != nullptr &&
      pending->kind == QueryChangeKind::kRegisterCircle) {
    radius = pending->radius;
  } else if (auto it = queries_.find(id); it != queries_.end()) {
    radius = it->second.circle.radius;
  }
  if (ClampRegion(Circle{center, radius}.BoundingBox()).IsEmpty()) {
    return Status::InvalidArgument(
        "circle query must overlap the space bounds");
  }
  PendingQueryChange c;
  c.kind = QueryChangeKind::kMove;
  c.id = id;
  c.center = center;
  buffer_.AddQueryChange(c, queries_.contains(id));
  return Status::OK();
}

Status ShardedEngine::RegisterPredictiveQuery(QueryId id, const Rect& region,
                                              double t_from, double t_to) {
  const Rect clamped = ClampRegion(region);
  if (clamped.IsEmpty()) {
    return Status::InvalidArgument(
        "predictive query region must overlap the space bounds");
  }
  if (t_to < t_from) {
    return Status::InvalidArgument("predictive window must have t_from <= t_to");
  }
  STQ_RETURN_IF_ERROR(ValidateQueryRegistration(id));
  PendingQueryChange c;
  c.kind = QueryChangeKind::kRegisterPredictive;
  c.id = id;
  c.region = clamped;
  c.t_from = t_from;
  c.t_to = t_to;
  buffer_.AddQueryChange(c, queries_.contains(id));
  return Status::OK();
}

Status ShardedEngine::MovePredictiveQuery(QueryId id, const Rect& region) {
  const Rect clamped = ClampRegion(region);
  if (clamped.IsEmpty()) {
    return Status::InvalidArgument(
        "predictive query region must overlap the space bounds");
  }
  Result<QueryKind> kind = EffectiveQueryKind(id);
  if (!kind.ok()) return kind.status();
  if (*kind != QueryKind::kPredictiveRange) {
    return Status::InvalidArgument("query is not a predictive query");
  }
  PendingQueryChange c;
  c.kind = QueryChangeKind::kMove;
  c.id = id;
  c.region = clamped;
  buffer_.AddQueryChange(c, queries_.contains(id));
  return Status::OK();
}

Status ShardedEngine::UnregisterQuery(QueryId id) {
  const bool live_in_store =
      queries_.contains(id) && !buffer_.HasPendingQueryUnregister(id);
  if (!live_in_store && !buffer_.HasPendingQueryRegister(id)) {
    std::ostringstream os;
    os << "query " << id << " unknown";
    return Status::NotFound(os.str());
  }
  PendingQueryChange c;
  c.kind = QueryChangeKind::kUnregister;
  c.id = id;
  buffer_.AddQueryChange(c, queries_.contains(id));
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

void ShardedEngine::RouteShardsOf(const RoutedQuery& rq,
                                  ShardList* out) const {
  out->clear();
  switch (rq.kind) {
    case QueryKind::kRange:
    case QueryKind::kPredictiveRange:
      map_.ShardsOverlapping(rq.region, out);
      break;
    case QueryKind::kCircleRange:
      map_.ShardsOverlapping(ClampRegion(rq.circle.BoundingBox()), out);
      break;
    case QueryKind::kKnn:
      break;  // router-owned
  }
}

void ShardedEngine::RouteShardsOfObject(const PendingObjectUpsert& u,
                                        ShardList* out) const {
  if (!u.predictive) {
    out->clear();
    out->push_back(map_.HomeOf(u.loc));
    return;
  }
  const Rect bbox = Trajectory{u.loc, u.vel, u.t}
                        .FootprintBetween(u.t, u.t + options_.prediction_horizon)
                        .BoundingBox();
  map_.ShardsOverlapping(bbox, out);
}

// ---------------------------------------------------------------------------
// Tick
// ---------------------------------------------------------------------------

TickResult ShardedEngine::EvaluateTick(Timestamp now) {
  if (now < last_tick_time_) {
    STQ_LOG(Warning) << "EvaluateTick time went backwards (" << now << " < "
                     << last_tick_time_ << ")";
  }
  last_tick_time_ = now;

  const uint64_t allocs_before = AllocCount();

  TickResult result;
  result.time = now;
  TickStats* stats = &result.stats;
  std::vector<Update>* out = &result.updates;

  TickScratch& scratch = *scratch_;
  std::vector<PendingObjectUpsert>& upserts = scratch.upserts;
  std::vector<ObjectId>& removals = scratch.removals;
  std::vector<PendingQueryChange>& query_changes = scratch.query_changes;
  buffer_.Drain(&upserts, &removals, &query_changes);

  // Deterministic processing order independent of hash-map iteration —
  // the exact comparators the single-grid engine uses, so histories and
  // shard-dispatch orders line up.
  std::sort(upserts.begin(), upserts.end(),
            [](const PendingObjectUpsert& a, const PendingObjectUpsert& b) {
              return a.id < b.id;
            });
  std::sort(removals.begin(), removals.end());
  std::sort(query_changes.begin(), query_changes.end(),
            [](const PendingQueryChange& a, const PendingQueryChange& b) {
              return a.id < b.id;
            });

  std::vector<char>& touched = scratch.touched;
  touched.assign(shards_.size(), 0);
  std::vector<MergeEntry>& entries = scratch.entries;  // captures + updates
  std::vector<Reset>& resets = scratch.resets;  // ascending qid (change order)
  FlatSet<QueryId>& reset_qids = scratch.reset_qids;
  FlatSet<ObjectId>& global_removals = scratch.global_removals;
  entries.clear();
  resets.clear();
  reset_qids.clear();
  global_removals.clear();
  // Objects shard s will emit its own phase-1 removal negatives for this
  // tick; move-away captures must not decrement those pairs again.
  std::vector<FlatSet<ObjectId>>& removed_from = scratch.removed_from;
  removed_from.resize(shards_.size());
  for (FlatSet<ObjectId>& s : removed_from) s.clear();
  std::vector<KnnEvent>& events = scratch.events;
  events.clear();

  {
    PhaseTimer route_timer(&stats->shard_route_seconds);

    // --- Route removals ---------------------------------------------------
    for (ObjectId id : removals) {
      auto it = objects_.find(id);
      STQ_CHECK(it != objects_.end())
          << "buffered removal of unknown object " << id;
      RoutedObject& ro = it->second;
      if (history_ != nullptr) history_->RecordRemoval(id, now);
      for (int s : ro.shards) {
        Status st = shards_[s]->RemoveObject(id);
        STQ_CHECK(st.ok()) << "shard " << s << " rejected removal of object "
                           << id << ": " << st.ToString();
        touched[s] = 1;
        removed_from[s].insert(id);
      }
      global_removals.insert(id);
      KnnEvent e;
      e.old_loc = ro.loc;
      e.has_old = true;
      events.push_back(e);
      objects_.erase(it);
      ++stats->object_removals_applied;
    }

    // --- Route upserts ----------------------------------------------------
    for (const PendingObjectUpsert& u : upserts) {
      if (history_ != nullptr) history_->RecordReport(u.id, u.loc, u.t);
      ShardList& ns = scratch.route_ns;
      RouteShardsOfObject(u, &ns);
      auto dispatch_upsert = [&](int s) {
        Status st =
            u.predictive
                ? shards_[s]->UpsertPredictiveObject(u.id, u.loc, u.vel, u.t)
                : shards_[s]->UpsertObject(u.id, u.loc, u.t);
        STQ_CHECK(st.ok()) << "shard " << s << " rejected upsert of object "
                           << u.id << ": " << st.ToString();
        touched[s] = 1;
      };
      KnnEvent e;
      e.new_loc = u.loc;
      e.has_new = true;
      auto it = objects_.find(u.id);
      if (it == objects_.end()) {
        for (int s : ns) dispatch_upsert(s);
        RoutedObject ro;
        ro.loc = u.loc;
        ro.vel = u.predictive ? u.vel : Velocity{};
        ro.t = u.t;
        ro.predictive = u.predictive;
        ro.shards = ns;
        objects_.emplace(u.id, std::move(ro));
      } else {
        RoutedObject& ro = it->second;
        e.old_loc = ro.loc;
        e.has_old = true;
        for (int s : ns) dispatch_upsert(s);
        // Departed shards: the object hands off; the shard ships its own
        // phase-1 negatives for every answer it participated in there.
        for (int s : ro.shards) {
          if (!std::binary_search(ns.begin(), ns.end(), s)) {
            Status st = shards_[s]->RemoveObject(u.id);
            STQ_CHECK(st.ok())
                << "shard " << s << " rejected re-route removal of object "
                << u.id << ": " << st.ToString();
            touched[s] = 1;
            removed_from[s].insert(u.id);
          }
        }
        ro.loc = u.loc;
        ro.vel = u.predictive ? u.vel : Velocity{};
        ro.t = u.t;
        ro.predictive = u.predictive;
        ro.shards = ns;
      }
      events.push_back(e);
      ++stats->object_updates_applied;
    }

    // --- Route query changes ----------------------------------------------
    auto snapshot_members = [&](QueryId qid, const RoutedQuery& rq,
                                std::vector<ObjectId>* old_members) {
      if (rq.kind == QueryKind::kKnn) {
        *old_members = rq.knn_answer;  // already sorted by id
        return;
      }
      if (auto mit = members_.find(qid); mit != members_.end()) {
        old_members->reserve(mit->second.size());
        for (const auto& [oid, cnt] : mit->second) old_members->push_back(oid);
        std::sort(old_members->begin(), old_members->end());
      }
    };
    auto drop_routed_query = [&](QueryId qid) {
      auto it = queries_.find(qid);
      STQ_CHECK(it != queries_.end()) << "dropping unknown query " << qid;
      RoutedQuery& rq = it->second;
      Reset r;
      r.qid = qid;
      snapshot_members(qid, rq, &r.old_members);
      resets.push_back(std::move(r));
      reset_qids.insert(qid);
      for (int s : rq.shards) {
        Status st = shards_[s]->UnregisterQuery(qid);
        STQ_CHECK(st.ok()) << "shard " << s << " rejected unregister of query "
                           << qid << ": " << st.ToString();
        touched[s] = 1;
      }
      members_.erase(qid);
      knn_dirty_.erase(qid);
      queries_.erase(it);
      ++stats->queries_unregistered;
    };
    auto capture_departed = [&](QueryId qid, int s) {
      // The shard's committed answer becomes all-negative at the router:
      // the query no longer watches this shard. Objects the shard is
      // already removing this tick produce their own phase-1 negatives.
      Result<std::vector<ObjectId>> ans = shards_[s]->CurrentAnswer(qid);
      STQ_CHECK(ans.ok()) << "shard " << s << " lost query " << qid << ": "
                          << ans.status().ToString();
      for (ObjectId oid : *ans) {
        if (!removed_from[s].contains(oid)) {
          entries.push_back(MergeEntry{qid, oid, -1});
        }
      }
      Status st = shards_[s]->UnregisterQuery(qid);
      STQ_CHECK(st.ok()) << "shard " << s << " rejected move-away unregister "
                         << "of query " << qid << ": " << st.ToString();
      touched[s] = 1;
    };

    for (const PendingQueryChange& c : query_changes) {
      switch (c.kind) {
        case QueryChangeKind::kUnregister: {
          drop_routed_query(c.id);
          break;
        }
        case QueryChangeKind::kMove: {
          auto it = queries_.find(c.id);
          STQ_CHECK(it != queries_.end()) << "buffered move of unknown query";
          RoutedQuery& rq = it->second;
          if (rq.kind == QueryKind::kKnn) {
            rq.circle.center = c.center;
            knn_dirty_.insert(c.id);
            ++stats->query_changes_applied;
            break;
          }
          if (rq.kind == QueryKind::kCircleRange) {
            rq.circle.center = c.center;
          } else {
            rq.region = c.region;
          }
          ShardList& ns = scratch.route_ns;
          RouteShardsOf(rq, &ns);
          for (int s : ns) {
            touched[s] = 1;
            const bool retained =
                std::binary_search(rq.shards.begin(), rq.shards.end(), s);
            Status st;
            if (retained) {
              switch (rq.kind) {
                case QueryKind::kRange:
                  st = shards_[s]->MoveRangeQuery(c.id, rq.region);
                  break;
                case QueryKind::kPredictiveRange:
                  st = shards_[s]->MovePredictiveQuery(c.id, rq.region);
                  break;
                case QueryKind::kCircleRange:
                  st = shards_[s]->MoveCircleQuery(c.id, c.center);
                  break;
                case QueryKind::kKnn:
                  break;
              }
            } else {
              switch (rq.kind) {
                case QueryKind::kRange:
                  st = shards_[s]->RegisterRangeQuery(c.id, rq.region);
                  break;
                case QueryKind::kPredictiveRange:
                  st = shards_[s]->RegisterPredictiveQuery(
                      c.id, rq.region, rq.t_from, rq.t_to);
                  break;
                case QueryKind::kCircleRange:
                  st = shards_[s]->RegisterCircleQuery(c.id, c.center,
                                                       rq.circle.radius);
                  break;
                case QueryKind::kKnn:
                  break;
              }
            }
            STQ_CHECK(st.ok()) << "shard " << s << " rejected move of query "
                               << c.id << ": " << st.ToString();
          }
          for (int s : rq.shards) {
            if (!std::binary_search(ns.begin(), ns.end(), s)) {
              capture_departed(c.id, s);
            }
          }
          rq.shards = ns;
          ++stats->query_changes_applied;
          break;
        }
        default: {  // a Register*: re-registration drops the old incarnation
          if (queries_.contains(c.id)) drop_routed_query(c.id);
          RoutedQuery rq;
          switch (c.kind) {
            case QueryChangeKind::kRegisterRange:
              rq.kind = QueryKind::kRange;
              rq.region = c.region;
              break;
            case QueryChangeKind::kRegisterPredictive:
              rq.kind = QueryKind::kPredictiveRange;
              rq.region = c.region;
              rq.t_from = c.t_from;
              rq.t_to = c.t_to;
              break;
            case QueryChangeKind::kRegisterCircle:
              rq.kind = QueryKind::kCircleRange;
              rq.circle = Circle{c.center, c.radius};
              break;
            case QueryChangeKind::kRegisterKnn:
              rq.kind = QueryKind::kKnn;
              rq.circle = Circle{c.center, 0.0};
              rq.k = c.k;
              break;
            case QueryChangeKind::kMove:
            case QueryChangeKind::kUnregister:
              STQ_CHECK(false) << "unreachable";
              break;
          }
          RouteShardsOf(rq, &rq.shards);
          for (int s : rq.shards) {
            touched[s] = 1;
            Status st;
            switch (rq.kind) {
              case QueryKind::kRange:
                st = shards_[s]->RegisterRangeQuery(c.id, rq.region);
                break;
              case QueryKind::kPredictiveRange:
                st = shards_[s]->RegisterPredictiveQuery(c.id, rq.region,
                                                         rq.t_from, rq.t_to);
                break;
              case QueryKind::kCircleRange:
                st = shards_[s]->RegisterCircleQuery(c.id, rq.circle.center,
                                                     rq.circle.radius);
                break;
              case QueryKind::kKnn:
                break;
            }
            STQ_CHECK(st.ok())
                << "shard " << s << " rejected registration of query " << c.id
                << ": " << st.ToString();
          }
          if (rq.kind == QueryKind::kKnn) knn_dirty_.insert(c.id);
          queries_.emplace(c.id, std::move(rq));
          ++stats->query_changes_applied;
          break;
        }
      }
    }
  }

  // --- Parallel shard ticks -------------------------------------------------
  std::vector<int>& ticked = scratch.ticked;
  ticked.clear();
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (touched[s]) ticked.push_back(static_cast<int>(s));
  }
  std::vector<TickResult>& shard_results = scratch.shard_results;
  shard_results.resize(ticked.size());
  {
    PhaseTimer wall_timer(&stats->shard_tick_wall_seconds);
    std::vector<double>& shard_walls = scratch.shard_walls;
    shard_walls.assign(ticked.size(), 0.0);
    auto run_one = [&](size_t i) {
      const auto t0 = std::chrono::steady_clock::now();
      shard_results[i] = shards_[ticked[i]]->EvaluateTick(now);
      shard_walls[i] = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
    };
    if (pool_ != nullptr && ticked.size() > 1) {
      pool_->RunShards(ticked.size(), [&](int, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) run_one(i);
      });
    } else {
      for (size_t i = 0; i < ticked.size(); ++i) run_one(i);
    }
    for (double w : shard_walls) {
      stats->shard_tick_busy_seconds += w;
      stats->shard_tick_max_seconds = std::max(stats->shard_tick_max_seconds, w);
    }
  }
  stats->shards_ticked = ticked.size();
  for (const TickResult& sr : shard_results) {
    stats->removals_seconds += sr.stats.removals_seconds;
    stats->upserts_seconds += sr.stats.upserts_seconds;
    stats->query_changes_seconds += sr.stats.query_changes_seconds;
    stats->query_pass_seconds += sr.stats.query_pass_seconds;
    stats->object_match_seconds += sr.stats.object_match_seconds;
    stats->object_apply_seconds += sr.stats.object_apply_seconds;
    stats->knn_search_seconds += sr.stats.knn_search_seconds;
    stats->knn_apply_seconds += sr.stats.knn_apply_seconds;
  }

  // --- Refcount merge -------------------------------------------------------
  {
    PhaseTimer merge_timer(&stats->shard_merge_seconds);
    for (const TickResult& sr : shard_results) {
      for (const Update& u : sr.updates) {
        entries.push_back(MergeEntry{
            u.query, u.object, u.sign == UpdateSign::kPositive ? 1 : -1});
      }
    }
    std::sort(entries.begin(), entries.end(),
              [](const MergeEntry& a, const MergeEntry& b) {
                if (a.q != b.q) return a.q < b.q;
                return a.o < b.o;
              });
    size_t i = 0;
    const size_t n = entries.size();
    while (i < n) {
      const QueryId q = entries[i].q;
      size_t q_end = i;
      while (q_end < n && entries[q_end].q == q) ++q_end;
      if (reset_qids.contains(q)) {
        // The query was dropped (and possibly re-registered) this tick.
        // The single-grid engine starts the new incarnation's answer
        // stream from scratch: every shard-reported member of the NEW
        // incarnation ships as a positive, regardless of old membership;
        // the old incarnation's emissions are discarded (its removal
        // negatives are reconstructed below from the removal batch).
        const bool reregistered = queries_.contains(q);
        while (i < q_end) {
          const ObjectId o = entries[i].o;
          int plus = 0;
          while (i < q_end && entries[i].o == o) {
            if (entries[i].d > 0) ++plus;
            ++i;
          }
          if (reregistered && plus > 0) {
            out->push_back(Update::Positive(q, o));
            members_[q][o] = plus;
          }
        }
      } else {
        auto mit = members_.find(q);
        if (mit == members_.end()) {
          mit = members_.try_emplace(q).first;
        }
        auto& counts = mit->second;
        while (i < q_end) {
          const ObjectId o = entries[i].o;
          int delta = 0;
          while (i < q_end && entries[i].o == o) {
            delta += entries[i].d;
            ++i;
          }
          auto cit = counts.find(o);
          const int before = cit == counts.end() ? 0 : cit->second;
          const int after = before + delta;
          STQ_DCHECK(after >= 0) << "negative shard refcount for query " << q
                                 << ", object " << o;
          if (before == 0 && after > 0) {
            out->push_back(Update::Positive(q, o));
          } else if (before > 0 && after == 0) {
            out->push_back(Update::Negative(q, o));
          }
          if (after == 0) {
            if (cit != counts.end()) counts.erase(cit);
          } else if (cit == counts.end()) {
            counts.emplace(o, after);
          } else {
            cit->second = after;
          }
        }
        if (counts.empty()) members_.erase(mit);
      }
    }
    // Reset negatives: the single-grid engine's phase 1 ships a negative
    // for every removed object that was a member of a query at tick
    // start — even when the query itself is dropped later in the tick.
    if (!global_removals.empty()) {
      for (const Reset& r : resets) {
        for (ObjectId o : r.old_members) {
          if (global_removals.contains(o)) {
            out->push_back(Update::Negative(r.qid, o));
          }
        }
      }
    }
  }

  // --- Router k-NN ----------------------------------------------------------
  {
    PhaseTimer knn_timer(&stats->shard_knn_seconds);
    if (!events.empty()) {
      for (const auto& [qid, rq] : queries_) {
        if (rq.kind != QueryKind::kKnn || knn_dirty_.contains(qid)) continue;
        for (const KnnEvent& e : events) {
          double d2 = kInf;
          if (e.has_old) {
            d2 = std::min(d2, SquaredDistance(rq.circle.center, e.old_loc));
          }
          if (e.has_new) {
            d2 = std::min(d2, SquaredDistance(rq.circle.center, e.new_loc));
          }
          // <= mirrors the single-grid candidate probe: exact threshold
          // ties dirty the query too; an unfilled answer (infinite
          // threshold) is dirtied by every event.
          if (d2 <= rq.knn_dist2) {
            knn_dirty_.insert(qid);
            break;
          }
        }
      }
    }
    std::vector<QueryId>& dirty = scratch.knn_dirty_ids;
    dirty.assign(knn_dirty_.begin(), knn_dirty_.end());
    std::sort(dirty.begin(), dirty.end());
    knn_dirty_.clear();
    for (QueryId qid : dirty) {
      auto it = queries_.find(qid);
      if (it == queries_.end() || it->second.kind != QueryKind::kKnn) continue;
      RoutedQuery& rq = it->second;
      const std::vector<KnnEvaluator::Neighbor> neighbors =
          SearchKnn(rq.circle.center, rq.k);
      std::vector<ObjectId> fresh;
      fresh.reserve(neighbors.size());
      for (const auto& nb : neighbors) fresh.push_back(nb.id);
      std::sort(fresh.begin(), fresh.end());
      // Diff against the committed answer (both sorted by id).
      size_t a = 0, b = 0;
      while (a < rq.knn_answer.size() || b < fresh.size()) {
        if (b == fresh.size() ||
            (a < rq.knn_answer.size() && rq.knn_answer[a] < fresh[b])) {
          out->push_back(Update::Negative(qid, rq.knn_answer[a]));
          ++a;
        } else if (a == rq.knn_answer.size() || fresh[b] < rq.knn_answer[a]) {
          out->push_back(Update::Positive(qid, fresh[b]));
          ++b;
        } else {
          ++a;
          ++b;
        }
      }
      rq.knn_answer = std::move(fresh);
      rq.knn_dist2 = neighbors.size() == static_cast<size_t>(rq.k)
                         ? neighbors.back().dist2
                         : kInf;
      ++stats->knn_reevaluations;
    }
  }

  CanonicalizeUpdates(out);
  for (const Update& u : *out) {
    if (u.sign == UpdateSign::kPositive) {
      ++stats->positive_updates;
    } else {
      ++stats->negative_updates;
    }
  }
  // The router's own delta — the counter is global (all threads), so this
  // already covers the per-shard ticks; summing shard results would
  // double-count.
  stats->heap_allocations = AllocCount() - allocs_before;
  return result;
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

std::vector<int> ShardedEngine::ObjectShards(ObjectId id) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) return {};
  return std::vector<int>(it->second.shards.begin(), it->second.shards.end());
}

std::vector<int> ShardedEngine::QueryShards(QueryId id) const {
  auto it = queries_.find(id);
  if (it == queries_.end()) return {};
  return std::vector<int>(it->second.shards.begin(), it->second.shards.end());
}

Result<std::vector<ObjectId>> ShardedEngine::CurrentAnswer(QueryId id) const {
  auto it = queries_.find(id);
  if (it == queries_.end()) {
    std::ostringstream os;
    os << "query " << id << " unknown";
    return Status::NotFound(os.str());
  }
  if (it->second.kind == QueryKind::kKnn) return it->second.knn_answer;
  std::vector<ObjectId> answer;
  if (auto mit = members_.find(id); mit != members_.end()) {
    answer.reserve(mit->second.size());
    for (const auto& [oid, cnt] : mit->second) answer.push_back(oid);
    std::sort(answer.begin(), answer.end());
  }
  return answer;
}

bool ShardedEngine::GetAnswerSet(QueryId id, FlatSet<ObjectId>* out) const {
  out->clear();
  auto it = queries_.find(id);
  if (it == queries_.end()) return false;
  if (it->second.kind == QueryKind::kKnn) {
    out->insert(it->second.knn_answer.begin(), it->second.knn_answer.end());
    return true;
  }
  if (auto mit = members_.find(id); mit != members_.end()) {
    for (const auto& [oid, cnt] : mit->second) out->insert(oid);
  }
  return true;
}

void ShardedEngine::ForEachObjectInfo(
    // stq-lint: allow(alloc-discipline/function): cold introspection walk
    const std::function<void(const QueryProcessor::ObjectInfo&)>& fn) const {
  for (const auto& [oid, ro] : objects_) {
    QueryProcessor::ObjectInfo info;
    info.id = oid;
    info.loc = ro.loc;
    info.vel = ro.vel;
    info.t = ro.t;
    info.predictive = ro.predictive;
    fn(info);
  }
}

void ShardedEngine::ForEachQueryInfo(
    // stq-lint: allow(alloc-discipline/function): cold introspection walk
    const std::function<void(const QueryProcessor::QueryInfo&)>& fn) const {
  for (const auto& [qid, rq] : queries_) {
    QueryProcessor::QueryInfo info;
    info.id = qid;
    info.kind = rq.kind;
    info.region = rq.region;
    info.circle = rq.circle;
    info.k = rq.k;
    info.t_from = rq.t_from;
    info.t_to = rq.t_to;
    if (rq.kind == QueryKind::kKnn) {
      info.answer_size = rq.knn_answer.size();
    } else if (auto mit = members_.find(qid); mit != members_.end()) {
      info.answer_size = mit->second.size();
    }
    fn(info);
  }
}

Result<std::vector<ObjectId>> ShardedEngine::EvaluateFromScratch(
    QueryId id) const {
  auto it = queries_.find(id);
  if (it == queries_.end()) {
    std::ostringstream os;
    os << "query " << id << " unknown";
    return Status::NotFound(os.str());
  }
  const RoutedQuery& rq = it->second;
  std::vector<ObjectId> answer;
  if (rq.kind == QueryKind::kKnn) {
    for (const auto& nb : SearchKnn(rq.circle.center, rq.k)) {
      answer.push_back(nb.id);
    }
  } else {
    FlatSet<ObjectId> seen;
    for (int s : rq.shards) {
      Result<std::vector<ObjectId>> part = shards_[s]->EvaluateFromScratch(id);
      STQ_CHECK(part.ok()) << "shard " << s << " lost query " << id << ": "
                           << part.status().ToString();
      seen.insert(part->begin(), part->end());
    }
    answer.assign(seen.begin(), seen.end());
  }
  std::sort(answer.begin(), answer.end());
  return answer;
}

std::vector<KnnEvaluator::Neighbor> ShardedEngine::SearchKnn(
    const Point& center, int k) const {
  std::vector<KnnEvaluator::Neighbor> merged;
  if (k < 1) return merged;
  const int home = map_.HomeOf(center);
  merged = shards_[home]->SearchKnn(center, k);
  double r2 = merged.size() == static_cast<size_t>(k) ? merged.back().dist2
                                                      : kInf;
  for (int s = 0; s < map_.num_shards(); ++s) {
    if (s == home) continue;
    // Every object in shard s is at least RectDistance2 away; a shard
    // strictly beyond the current k-th distance cannot contribute.
    if (RectDistance2(map_.shard_rect(s), center) > r2) continue;
    const std::vector<KnnEvaluator::Neighbor> part =
        shards_[s]->SearchKnn(center, k);
    merged.insert(merged.end(), part.begin(), part.end());
    std::sort(merged.begin(), merged.end());
    // Predictive replicas appear in several shards with identical stored
    // positions; (dist2, id) duplicates are adjacent after the sort.
    merged.erase(std::unique(merged.begin(), merged.end(),
                             [](const KnnEvaluator::Neighbor& a,
                                const KnnEvaluator::Neighbor& b) {
                               return a.id == b.id && a.dist2 == b.dist2;
                             }),
                 merged.end());
    if (merged.size() > static_cast<size_t>(k)) {
      merged.resize(static_cast<size_t>(k));
    }
    if (merged.size() == static_cast<size_t>(k)) {
      r2 = merged.back().dist2;
    }
  }
  return merged;
}

Result<std::vector<ObjectId>> ShardedEngine::EvaluatePastRangeQuery(
    const Rect& region, Timestamp t) const {
  if (history_ == nullptr) {
    return Status::FailedPrecondition(
        "past queries require QueryProcessorOptions::record_history");
  }
  return history_->RangeAt(ClampRegion(region), t);
}

// ---------------------------------------------------------------------------
// Cross-shard audit
// ---------------------------------------------------------------------------

void ShardedEngine::AuditCrossShard(
    size_t max_violations, std::vector<std::string>* violations) const {
  auto full = [&]() { return violations->size() >= max_violations; };
  auto add = [&](const std::string& msg) {
    if (!full()) violations->push_back("cross-shard: " + msg);
  };

  // Objects: routing is consistent and every routed shard stores the
  // exact same record.
  std::vector<ObjectId> oids;
  oids.reserve(objects_.size());
  for (const auto& [oid, ro] : objects_) oids.push_back(oid);
  std::sort(oids.begin(), oids.end());
  for (ObjectId oid : oids) {
    if (full()) return;
    const RoutedObject& ro = *objects_.FindPtr(oid);
    PendingObjectUpsert u;
    u.id = oid;
    u.loc = ro.loc;
    u.vel = ro.vel;
    u.t = ro.t;
    u.predictive = ro.predictive;
    ShardList expected;
    RouteShardsOfObject(u, &expected);
    if (!(expected == ro.shards)) {
      std::ostringstream os;
      os << "object " << oid << " routed to " << ro.shards.size()
         << " shard(s) but its location/footprint maps to "
         << expected.size();
      add(os.str());
    }
    if (!ro.predictive && ro.shards.size() != 1) {
      std::ostringstream os;
      os << "sampled object " << oid << " lives in " << ro.shards.size()
         << " shards (double-counted); expected exactly its home shard";
      add(os.str());
    }
    for (int s : ro.shards) {
      const ObjectRecord* rec = shards_[s]->object_store().Find(oid);
      if (rec == nullptr) {
        std::ostringstream os;
        os << "object " << oid << " routed to shard " << s
           << " but missing from its store";
        add(os.str());
        continue;
      }
      if (!(rec->loc == ro.loc) || rec->t != ro.t ||
          rec->predictive != ro.predictive || !(rec->vel == ro.vel)) {
        std::ostringstream os;
        os << "object " << oid << " state in shard " << s
           << " diverges from the router's record";
        add(os.str());
      }
    }
  }

  // Reverse direction: no shard stores an object the router did not
  // route there.
  for (size_t s = 0; s < shards_.size(); ++s) {
    std::vector<ObjectId> stored;
    shards_[s]->object_store().ForEach(
        [&](const ObjectRecord& rec) { stored.push_back(rec.id); });
    std::sort(stored.begin(), stored.end());
    for (ObjectId oid : stored) {
      if (full()) return;
      auto it = objects_.find(oid);
      if (it == objects_.end() ||
          !std::binary_search(it->second.shards.begin(),
                              it->second.shards.end(),
                              static_cast<int>(s))) {
        std::ostringstream os;
        os << "shard " << s << " stores object " << oid
           << " the router never routed there";
        add(os.str());
      }
    }
  }

  // Queries: shard registration matches routing, and the union of the
  // per-shard answers (with multiplicity) is exactly the router's
  // reference-counted committed answer.
  std::vector<QueryId> qids;
  qids.reserve(queries_.size());
  for (const auto& [qid, rq] : queries_) qids.push_back(qid);
  std::sort(qids.begin(), qids.end());
  for (QueryId qid : qids) {
    if (full()) return;
    const RoutedQuery& rq = *queries_.FindPtr(qid);
    if (rq.kind == QueryKind::kKnn) {
      if (!rq.shards.empty()) {
        std::ostringstream os;
        os << "k-NN query " << qid << " routed to shards; it is router-owned";
        add(os.str());
      }
      std::vector<ObjectId> fresh;
      for (const auto& nb : SearchKnn(rq.circle.center, rq.k)) {
        fresh.push_back(nb.id);
      }
      std::sort(fresh.begin(), fresh.end());
      if (fresh != rq.knn_answer) {
        std::ostringstream os;
        os << "k-NN query " << qid << " committed answer ("
           << rq.knn_answer.size() << " ids) != cross-shard search ("
           << fresh.size() << " ids)";
        add(os.str());
      }
      continue;
    }
    ShardList expected;
    RouteShardsOf(rq, &expected);
    if (!(expected == rq.shards)) {
      std::ostringstream os;
      os << "query " << qid << " routed to " << rq.shards.size()
         << " shard(s) but its region overlaps " << expected.size();
      add(os.str());
    }
    FlatMap<ObjectId, int> counts;
    for (int s : rq.shards) {
      if (shards_[s]->query_store().Find(qid) == nullptr) {
        std::ostringstream os;
        os << "query " << qid << " routed to shard " << s
           << " but missing from its store";
        add(os.str());
        continue;
      }
      Result<std::vector<ObjectId>> ans = shards_[s]->CurrentAnswer(qid);
      if (!ans.ok()) continue;
      for (ObjectId oid : *ans) ++counts[oid];
    }
    const auto mit = members_.find(qid);
    static const FlatMap<ObjectId, int> kEmpty;
    const auto& committed = mit == members_.end() ? kEmpty : mit->second;
    std::vector<ObjectId> keys;
    for (const auto& [oid, cnt] : counts) keys.push_back(oid);
    for (const auto& [oid, cnt] : committed) keys.push_back(oid);
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    for (ObjectId oid : keys) {
      if (full()) return;
      const auto a = counts.find(oid);
      const auto b = committed.find(oid);
      const int shard_count = a == counts.end() ? 0 : a->second;
      const int ref_count = b == committed.end() ? 0 : b->second;
      if (shard_count != ref_count) {
        std::ostringstream os;
        os << "query " << qid << ", object " << oid << ": " << shard_count
           << " shard(s) report the pair but the router's refcount is "
           << ref_count;
        add(os.str());
      }
    }
  }

  // Reverse direction: no shard hosts a query the router did not route
  // there (or of a different kind).
  for (size_t s = 0; s < shards_.size(); ++s) {
    std::vector<QueryId> stored;
    shards_[s]->query_store().ForEach(
        [&](const QueryRecord& rec) { stored.push_back(rec.id); });
    std::sort(stored.begin(), stored.end());
    for (QueryId qid : stored) {
      if (full()) return;
      auto it = queries_.find(qid);
      if (it == queries_.end() ||
          !std::binary_search(it->second.shards.begin(),
                              it->second.shards.end(), static_cast<int>(s))) {
        std::ostringstream os;
        os << "shard " << s << " hosts query " << qid
           << " the router never routed there";
        add(os.str());
        continue;
      }
      if (shards_[s]->query_store().Find(qid)->kind != it->second.kind) {
        std::ostringstream os;
        os << "shard " << s << " hosts query " << qid
           << " with a different kind than the router's record";
        add(os.str());
      }
    }
  }
}

}  // namespace stq
