#include "stq/core/query_processor.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <limits>
#include <sstream>
#include <utility>

#include "stq/common/alloc_stats.h"
#include "stq/common/check.h"
#include "stq/core/grid_refiner.h"
#include "stq/core/invariant_auditor.h"
#include "stq/core/sharded_server.h"

namespace stq {

namespace {

// Accumulates the enclosing scope's wall time into a TickStats field.
class PhaseTimer {
 public:
  explicit PhaseTimer(double* sink)
      : sink_(sink), start_(std::chrono::steady_clock::now()) {}
  ~PhaseTimer() {
    *sink_ += std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - start_)
                  .count();
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  double* sink_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

QueryProcessor::QueryProcessor(const QueryProcessorOptions& options)
    : options_(options),
      // In sharded mode the router (ShardedEngine) owns the history, the
      // pool and all spatial state; the facade keeps only a 1-cell
      // placeholder grid so the evaluator members stay valid.
      history_(options.record_history && options.num_shards <= 1
                   ? std::make_unique<HistoryStore>()
                   : nullptr),
      pool_(options.num_shards <= 1 &&
                    ThreadPool::ResolveWorkers(options.worker_threads) > 1
                ? std::make_unique<ThreadPool>(
                      ThreadPool::ResolveWorkers(options.worker_threads))
                : nullptr),
      grid_(std::make_unique<GridIndex>(
          options_.bounds,
          options.num_shards > 1 ? 1
          : options_.grid_cells_x > 0 ? options_.grid_cells_x
                                      : options_.grid_cells_per_side,
          options.num_shards > 1 ? 1
          : options_.grid_cells_y > 0 ? options_.grid_cells_y
                                      : options_.grid_cells_per_side)),
      range_(EngineState{grid_.get(), &objects_, &queries_, &options_}),
      knn_(EngineState{grid_.get(), &objects_, &queries_, &options_}),
      predictive_(EngineState{grid_.get(), &objects_, &queries_, &options_}),
      circle_(EngineState{grid_.get(), &objects_, &queries_, &options_}) {
  STQ_CHECK(options_.Validate()) << "invalid QueryProcessorOptions";
  if (options_.num_shards > 1) {
    sharded_ = std::make_unique<ShardedEngine>(options_);
  } else if (options_.adaptive.enabled) {
    refiner_ = std::make_unique<GridRefiner>(options_.adaptive, grid_.get());
  }
}

QueryProcessor::~QueryProcessor() = default;

EngineState QueryProcessor::state() {
  return EngineState{grid_.get(), &objects_, &queries_, &options_};
}

// ---------------------------------------------------------------------------
// Report ingestion
// ---------------------------------------------------------------------------

double QueryProcessor::LatestKnownReportTime(ObjectId id) const {
  // A pending removal wipes the history; a pending upsert supersedes the
  // store (its timestamp is what the store will hold after the next
  // tick, and it may be older than the store's when it follows a
  // removal). The buffer holds at most one of the two per id.
  if (buffer_.HasPendingRemove(id)) {
    return -std::numeric_limits<double>::infinity();
  }
  if (const PendingObjectUpsert* u = buffer_.FindPendingUpsert(id);
      u != nullptr) {
    return u->t;
  }
  if (const ObjectRecord* o = objects_.Find(id); o != nullptr) {
    return o->t;
  }
  return -std::numeric_limits<double>::infinity();
}

Point QueryProcessor::ClampLocation(const Point& loc) const {
  // A per-shard engine owns a sub-rect of the universe but must store
  // exact universe-clamped positions (location_clamp_bounds); everyone
  // else clamps into their own bounds.
  const Rect& b = options_.location_clamp_bounds.IsEmpty()
                      ? options_.bounds
                      : options_.location_clamp_bounds;
  return Point{std::clamp(loc.x, b.min_x, b.max_x),
               std::clamp(loc.y, b.min_y, b.max_y)};
}

Status QueryProcessor::UpsertObject(ObjectId id, const Point& loc,
                                    Timestamp t) {
  if (sharded_ != nullptr) return sharded_->UpsertObject(id, loc, t);
  if (t < LatestKnownReportTime(id)) {
    return Status::InvalidArgument("stale object report");
  }
  buffer_.AddObjectUpsert(PendingObjectUpsert{id, ClampLocation(loc),
                                              Velocity{}, t,
                                              /*predictive=*/false});
  return Status::OK();
}

Status QueryProcessor::UpsertPredictiveObject(ObjectId id, const Point& loc,
                                              const Velocity& vel,
                                              Timestamp t) {
  if (sharded_ != nullptr) {
    return sharded_->UpsertPredictiveObject(id, loc, vel, t);
  }
  if (t < LatestKnownReportTime(id)) {
    return Status::InvalidArgument("stale object report");
  }
  buffer_.AddObjectUpsert(PendingObjectUpsert{id, ClampLocation(loc), vel, t,
                                              /*predictive=*/true});
  return Status::OK();
}

Status QueryProcessor::RemoveObject(ObjectId id) {
  if (sharded_ != nullptr) return sharded_->RemoveObject(id);
  const bool exists_in_store = objects_.Contains(id);
  if (!exists_in_store && !buffer_.HasPendingUpsert(id)) {
    std::ostringstream os;
    os << "object " << id << " unknown";
    return Status::NotFound(os.str());
  }
  buffer_.AddObjectRemove(id, exists_in_store);
  return Status::OK();
}

Status QueryProcessor::ValidateQueryRegistration(QueryId id) const {
  const bool live_in_store =
      queries_.Contains(id) && !buffer_.HasPendingQueryUnregister(id);
  if (live_in_store || buffer_.HasPendingQueryRegister(id)) {
    std::ostringstream os;
    os << "query " << id << " already registered";
    return Status::AlreadyExists(os.str());
  }
  return Status::OK();
}

Result<QueryKind> QueryProcessor::EffectiveQueryKind(QueryId id) const {
  if (const PendingQueryChange* pending = buffer_.FindPendingQueryChange(id);
      pending != nullptr) {
    switch (pending->kind) {
      case QueryChangeKind::kRegisterRange:
        return QueryKind::kRange;
      case QueryChangeKind::kRegisterKnn:
        return QueryKind::kKnn;
      case QueryChangeKind::kRegisterPredictive:
        return QueryKind::kPredictiveRange;
      case QueryChangeKind::kRegisterCircle:
        return QueryKind::kCircleRange;
      case QueryChangeKind::kUnregister: {
        std::ostringstream os;
        os << "query " << id << " pending unregistration";
        return Status::NotFound(os.str());
      }
      case QueryChangeKind::kMove:
        break;  // fall through to the store's kind
    }
  }
  if (const QueryRecord* q = queries_.Find(id); q != nullptr) {
    return q->kind;
  }
  std::ostringstream os;
  os << "query " << id << " unknown";
  return Status::NotFound(os.str());
}

Rect QueryProcessor::ClampRegion(const Rect& region) const {
  return region.Intersection(options_.bounds);
}

Status QueryProcessor::RegisterRangeQuery(QueryId id, const Rect& region) {
  if (sharded_ != nullptr) return sharded_->RegisterRangeQuery(id, region);
  const Rect clamped = ClampRegion(region);
  if (clamped.IsEmpty()) {
    return Status::InvalidArgument(
        "range query region must overlap the space bounds");
  }
  STQ_RETURN_IF_ERROR(ValidateQueryRegistration(id));
  PendingQueryChange c;
  c.kind = QueryChangeKind::kRegisterRange;
  c.id = id;
  c.region = clamped;
  buffer_.AddQueryChange(c, queries_.Contains(id));
  return Status::OK();
}

Status QueryProcessor::MoveRangeQuery(QueryId id, const Rect& region) {
  if (sharded_ != nullptr) return sharded_->MoveRangeQuery(id, region);
  const Rect clamped = ClampRegion(region);
  if (clamped.IsEmpty()) {
    return Status::InvalidArgument(
        "range query region must overlap the space bounds");
  }
  Result<QueryKind> kind = EffectiveQueryKind(id);
  if (!kind.ok()) return kind.status();
  if (*kind != QueryKind::kRange) {
    return Status::InvalidArgument("query is not a range query");
  }
  PendingQueryChange c;
  c.kind = QueryChangeKind::kMove;
  c.id = id;
  c.region = clamped;
  buffer_.AddQueryChange(c, queries_.Contains(id));
  return Status::OK();
}

Status QueryProcessor::RegisterKnnQuery(QueryId id, const Point& center,
                                        int k) {
  if (sharded_ != nullptr) return sharded_->RegisterKnnQuery(id, center, k);
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  STQ_RETURN_IF_ERROR(ValidateQueryRegistration(id));
  PendingQueryChange c;
  c.kind = QueryChangeKind::kRegisterKnn;
  c.id = id;
  c.center = center;
  c.k = k;
  buffer_.AddQueryChange(c, queries_.Contains(id));
  return Status::OK();
}

Status QueryProcessor::MoveKnnQuery(QueryId id, const Point& center) {
  if (sharded_ != nullptr) return sharded_->MoveKnnQuery(id, center);
  Result<QueryKind> kind = EffectiveQueryKind(id);
  if (!kind.ok()) return kind.status();
  if (*kind != QueryKind::kKnn) {
    return Status::InvalidArgument("query is not a k-NN query");
  }
  PendingQueryChange c;
  c.kind = QueryChangeKind::kMove;
  c.id = id;
  c.center = center;
  buffer_.AddQueryChange(c, queries_.Contains(id));
  return Status::OK();
}

Status QueryProcessor::RegisterCircleQuery(QueryId id, const Point& center,
                                           double radius) {
  if (sharded_ != nullptr) {
    return sharded_->RegisterCircleQuery(id, center, radius);
  }
  if (radius <= 0.0) {
    return Status::InvalidArgument("circle radius must be positive");
  }
  if (ClampRegion(Circle{center, radius}.BoundingBox()).IsEmpty()) {
    return Status::InvalidArgument(
        "circle query must overlap the space bounds");
  }
  STQ_RETURN_IF_ERROR(ValidateQueryRegistration(id));
  PendingQueryChange c;
  c.kind = QueryChangeKind::kRegisterCircle;
  c.id = id;
  c.center = center;
  c.radius = radius;
  buffer_.AddQueryChange(c, queries_.Contains(id));
  return Status::OK();
}

Status QueryProcessor::MoveCircleQuery(QueryId id, const Point& center) {
  if (sharded_ != nullptr) return sharded_->MoveCircleQuery(id, center);
  Result<QueryKind> kind = EffectiveQueryKind(id);
  if (!kind.ok()) return kind.status();
  if (*kind != QueryKind::kCircleRange) {
    return Status::InvalidArgument("query is not a circular range query");
  }
  // The disk must keep overlapping the space; its radius is stored either
  // in the record or the pending registration.
  double radius = 0.0;
  if (const PendingQueryChange* pending = buffer_.FindPendingQueryChange(id);
      pending != nullptr &&
      pending->kind == QueryChangeKind::kRegisterCircle) {
    radius = pending->radius;
  } else if (const QueryRecord* q = queries_.Find(id); q != nullptr) {
    radius = q->circle.radius;
  }
  if (ClampRegion(Circle{center, radius}.BoundingBox()).IsEmpty()) {
    return Status::InvalidArgument(
        "circle query must overlap the space bounds");
  }
  PendingQueryChange c;
  c.kind = QueryChangeKind::kMove;
  c.id = id;
  c.center = center;
  buffer_.AddQueryChange(c, queries_.Contains(id));
  return Status::OK();
}

Status QueryProcessor::RegisterPredictiveQuery(QueryId id, const Rect& region,
                                               double t_from, double t_to) {
  if (sharded_ != nullptr) {
    return sharded_->RegisterPredictiveQuery(id, region, t_from, t_to);
  }
  const Rect clamped = ClampRegion(region);
  if (clamped.IsEmpty()) {
    return Status::InvalidArgument(
        "predictive query region must overlap the space bounds");
  }
  if (t_to < t_from) {
    return Status::InvalidArgument("predictive window must have t_from <= t_to");
  }
  STQ_RETURN_IF_ERROR(ValidateQueryRegistration(id));
  PendingQueryChange c;
  c.kind = QueryChangeKind::kRegisterPredictive;
  c.id = id;
  c.region = clamped;
  c.t_from = t_from;
  c.t_to = t_to;
  buffer_.AddQueryChange(c, queries_.Contains(id));
  return Status::OK();
}

Status QueryProcessor::MovePredictiveQuery(QueryId id, const Rect& region) {
  if (sharded_ != nullptr) return sharded_->MovePredictiveQuery(id, region);
  const Rect clamped = ClampRegion(region);
  if (clamped.IsEmpty()) {
    return Status::InvalidArgument(
        "predictive query region must overlap the space bounds");
  }
  Result<QueryKind> kind = EffectiveQueryKind(id);
  if (!kind.ok()) return kind.status();
  if (*kind != QueryKind::kPredictiveRange) {
    return Status::InvalidArgument("query is not a predictive query");
  }
  PendingQueryChange c;
  c.kind = QueryChangeKind::kMove;
  c.id = id;
  c.region = clamped;
  buffer_.AddQueryChange(c, queries_.Contains(id));
  return Status::OK();
}

Status QueryProcessor::UnregisterQuery(QueryId id) {
  if (sharded_ != nullptr) return sharded_->UnregisterQuery(id);
  const bool live_in_store =
      queries_.Contains(id) && !buffer_.HasPendingQueryUnregister(id);
  if (!live_in_store && !buffer_.HasPendingQueryRegister(id)) {
    std::ostringstream os;
    os << "query " << id << " unknown";
    return Status::NotFound(os.str());
  }
  PendingQueryChange c;
  c.kind = QueryChangeKind::kUnregister;
  c.id = id;
  buffer_.AddQueryChange(c, queries_.Contains(id));
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Tick phases
// ---------------------------------------------------------------------------

void QueryProcessor::ApplyObjectRemovals(const std::vector<ObjectId>& removals,
                                         Timestamp now,
                                         std::vector<Update>* out,
                                         TickStats* stats) {
  for (ObjectId id : removals) {
    if (history_ != nullptr) history_->RecordRemoval(id, now);
    ObjectRecord* o = objects_.FindMutable(id);
    STQ_CHECK(o != nullptr) << "buffered removal of unknown object " << id;
    // Ship negatives for every answer the object participated in (copied:
    // SetMembership edits the QList under our feet); a k-NN query losing
    // a member must refill from the grid.
    const auto memberships = o->queries;
    for (QueryId qid : memberships) {
      QueryRecord* q = queries_.FindMutable(qid);
      STQ_DCHECK(q != nullptr);
      SetMembership(o, q, false, out);
      if (q->kind == QueryKind::kKnn) knn_.MarkDirty(qid);
    }
    if (o->predictive) {
      grid_->RemoveObjectFootprint(id, o->footprint);
    } else {
      grid_->RemoveObject(id, o->loc);
    }
    objects_.Erase(id);
    ++stats->object_removals_applied;
  }
}

void QueryProcessor::ApplyObjectUpserts(
    const std::vector<PendingObjectUpsert>& upserts,
    std::vector<ObjectId>* moved, TickStats* stats) {
  for (const PendingObjectUpsert& u : upserts) {
    if (history_ != nullptr) history_->RecordReport(u.id, u.loc, u.t);
    ObjectRecord* o = objects_.FindMutable(u.id);
    if (o == nullptr) {
      ObjectRecord rec;
      rec.id = u.id;
      rec.loc = u.loc;
      rec.vel = u.predictive ? u.vel : Velocity{};
      rec.t = u.t;
      rec.predictive = u.predictive;
      if (rec.predictive) {
        rec.footprint = rec.trajectory().FootprintBetween(
            rec.t, rec.t + options_.prediction_horizon);
        grid_->InsertObjectFootprint(rec.id, rec.footprint);
      } else {
        grid_->InsertObject(rec.id, rec.loc);
      }
      objects_.Insert(std::move(rec));
    } else {
      if (o->predictive) {
        grid_->RemoveObjectFootprint(o->id, o->footprint);
      } else {
        grid_->RemoveObject(o->id, o->loc);
      }
      o->loc = u.loc;
      o->vel = u.predictive ? u.vel : Velocity{};
      o->t = u.t;
      o->predictive = u.predictive;
      if (o->predictive) {
        o->footprint = o->trajectory().FootprintBetween(
            o->t, o->t + options_.prediction_horizon);
        grid_->InsertObjectFootprint(o->id, o->footprint);
      } else {
        grid_->InsertObject(o->id, o->loc);
      }
    }
    moved->push_back(u.id);
    ++stats->object_updates_applied;
  }
}

void QueryProcessor::DropQueryRecord(QueryId id, TickStats* stats) {
  QueryRecord* q = queries_.FindMutable(id);
  STQ_CHECK(q != nullptr) << "dropping unknown query " << id;
  for (ObjectId oid : q->answer) {
    ObjectRecord* o = objects_.FindMutable(oid);
    STQ_DCHECK(o != nullptr);
    ObjectStore::RemoveQuery(o, id);
  }
  if (!q->grid_footprint.IsEmpty()) {
    grid_->RemoveQuery(id, q->grid_footprint);
  }
  queries_.Erase(id);
  ++stats->queries_unregistered;
}

void QueryProcessor::ApplyQueryChanges(
    const std::vector<PendingQueryChange>& changes, Timestamp now,
    std::vector<std::pair<QueryId, Rect>>* changed_rects,
    std::vector<QueryId>* moved_circles, TickStats* stats) {
  for (const PendingQueryChange& c : changes) {
    // A Register for an id still present in the store means the client
    // unregistered and re-registered within one period: drop the old
    // incarnation first.
    if (c.kind != QueryChangeKind::kMove &&
        c.kind != QueryChangeKind::kUnregister && queries_.Contains(c.id)) {
      DropQueryRecord(c.id, stats);
    }
    switch (c.kind) {
      case QueryChangeKind::kUnregister: {
        DropQueryRecord(c.id, stats);
        break;
      }
      case QueryChangeKind::kRegisterRange: {
        QueryRecord rec;
        rec.id = c.id;
        rec.kind = QueryKind::kRange;
        rec.region = c.region;
        rec.t = now;
        rec.grid_footprint = c.region;
        grid_->InsertQuery(c.id, c.region);
        queries_.Insert(std::move(rec));
        changed_rects->emplace_back(c.id, Rect::Empty());
        ++stats->query_changes_applied;
        break;
      }
      case QueryChangeKind::kRegisterPredictive: {
        QueryRecord rec;
        rec.id = c.id;
        rec.kind = QueryKind::kPredictiveRange;
        rec.region = c.region;
        rec.t_from = c.t_from;
        rec.t_to = c.t_to;
        rec.t = now;
        rec.grid_footprint = c.region;
        grid_->InsertQuery(c.id, c.region);
        queries_.Insert(std::move(rec));
        changed_rects->emplace_back(c.id, Rect::Empty());
        ++stats->query_changes_applied;
        break;
      }
      case QueryChangeKind::kRegisterKnn: {
        QueryRecord rec;
        rec.id = c.id;
        rec.kind = QueryKind::kKnn;
        rec.circle = Circle{c.center, 0.0};
        rec.k = c.k;
        rec.t = now;
        // The grid footprint is installed by the k-NN evaluator once the
        // first answer (and hence the circle radius) is known.
        queries_.Insert(std::move(rec));
        knn_.MarkDirty(c.id);
        ++stats->query_changes_applied;
        break;
      }
      case QueryChangeKind::kRegisterCircle: {
        QueryRecord rec;
        rec.id = c.id;
        rec.kind = QueryKind::kCircleRange;
        rec.circle = Circle{c.center, c.radius};
        rec.t = now;
        rec.grid_footprint =
            CircleEvaluator::FootprintOf(rec, options_.bounds);
        grid_->InsertQuery(c.id, rec.grid_footprint);
        queries_.Insert(std::move(rec));
        moved_circles->push_back(c.id);  // first evaluation
        ++stats->query_changes_applied;
        break;
      }
      case QueryChangeKind::kMove: {
        QueryRecord* q = queries_.FindMutable(c.id);
        STQ_CHECK(q != nullptr) << "buffered move of unknown query";
        q->t = now;
        if (q->kind == QueryKind::kKnn) {
          q->circle.center = c.center;
          knn_.MarkDirty(c.id);
        } else if (q->kind == QueryKind::kCircleRange) {
          q->circle.center = c.center;
          const Rect footprint =
              CircleEvaluator::FootprintOf(*q, options_.bounds);
          if (!(footprint == q->grid_footprint)) {
            if (!q->grid_footprint.IsEmpty()) {
              grid_->RemoveQuery(c.id, q->grid_footprint);
            }
            if (!footprint.IsEmpty()) grid_->InsertQuery(c.id, footprint);
            q->grid_footprint = footprint;
          }
          moved_circles->push_back(c.id);
        } else {
          const Rect old_region = q->region;
          q->region = c.region;
          grid_->RemoveQuery(c.id, q->grid_footprint);
          grid_->InsertQuery(c.id, c.region);
          q->grid_footprint = c.region;
          changed_rects->emplace_back(c.id, old_region);
        }
        ++stats->query_changes_applied;
        break;
      }
    }
  }
}

void QueryProcessor::RunQueryPass(
    const std::vector<std::pair<QueryId, Rect>>& changed,
    const std::vector<QueryId>& moved_circles, std::vector<Update>* out) {
  for (const auto& [qid, old_region] : changed) {
    QueryRecord* q = queries_.FindMutable(qid);
    STQ_DCHECK(q != nullptr);
    if (q->kind == QueryKind::kRange) {
      range_.OnQueryRegionChanged(q, old_region, out);
    } else {
      STQ_DCHECK(q->kind == QueryKind::kPredictiveRange);
      predictive_.OnQueryRegionChanged(q, old_region, out);
    }
  }
  for (QueryId qid : moved_circles) {
    QueryRecord* q = queries_.FindMutable(qid);
    STQ_DCHECK(q != nullptr && q->kind == QueryKind::kCircleRange);
    circle_.OnCircleMoved(q, out);
  }
}

void QueryProcessor::MatchObjectShard(const std::vector<ObjectId>& moved,
                                      size_t begin, size_t end,
                                      MatchOutput* out) const {
  // Read-only over the grid and both stores: every decision is recorded
  // as a delta intent and replayed later by ApplyMatchDeltas. Other
  // shards run this concurrently against the same state.
  const bool batch = options_.batch_evaluation;
  std::vector<QueryId>& candidates = out->candidates;
  for (size_t i = begin; i < end; ++i) {
    const ObjectId oid = moved[i];
    const ObjectRecord* o = objects_.Find(oid);
    if (o == nullptr) continue;  // upserted then removed within the tick

    // Negative side: re-test every membership under the new report.
    for (QueryId qid : o->queries) {
      const QueryRecord* q = queries_.Find(qid);
      STQ_DCHECK(q != nullptr) << "QList references missing query " << qid;
      switch (q->kind) {
        case QueryKind::kRange:
          if (!RangeEvaluator::Satisfies(*o, *q)) {
            out->deltas.push_back(MatchDelta{qid, oid, false});
          }
          break;
        case QueryKind::kPredictiveRange:
          if (!PredictiveEvaluator::Satisfies(*o, *q, options_)) {
            out->deltas.push_back(MatchDelta{qid, oid, false});
          }
          break;
        case QueryKind::kCircleRange:
          if (!CircleEvaluator::Satisfies(*o, *q, options_.bounds)) {
            out->deltas.push_back(MatchDelta{qid, oid, false});
          }
          break;
        case QueryKind::kKnn:
          out->knn_dirty.push_back(qid);
          break;
      }
    }

    // Positive side: candidate queries are those stubbed into the cells
    // the object's (new) footprint touches. In batch mode a sampled
    // mover's candidates come from exactly one grid slot, so it is
    // deferred into the per-slot SoA batches (MatchProbeBatches below);
    // predictive movers keep the scalar multi-slot footprint probe.
    if (batch && !o->predictive) {
      out->probes.push_back(
          SlotProbe{grid_->SlotKeyOfPoint(o->loc), oid, o->loc.x, o->loc.y,
                    o->t});
      continue;
    }
    const Rect probe = o->predictive
                           ? o->footprint.BoundingBox()
                           : Rect{o->loc.x, o->loc.y, o->loc.x, o->loc.y};
    grid_->CollectQueriesInRect(probe, &candidates);
    for (QueryId qid : candidates) {
      const QueryRecord* q = queries_.Find(qid);
      STQ_DCHECK(q != nullptr) << "grid stub references missing query " << qid;
      switch (q->kind) {
        case QueryKind::kRange:
          if (RangeEvaluator::Satisfies(*o, *q)) {
            out->deltas.push_back(MatchDelta{qid, oid, true});
          }
          break;
        case QueryKind::kPredictiveRange:
          if (PredictiveEvaluator::Satisfies(*o, *q, options_)) {
            out->deltas.push_back(MatchDelta{qid, oid, true});
          }
          break;
        case QueryKind::kCircleRange:
          if (CircleEvaluator::Satisfies(*o, *q, options_.bounds)) {
            out->deltas.push_back(MatchDelta{qid, oid, true});
          }
          break;
        case QueryKind::kKnn:
          // Entering the answer circle can displace the current k-th
          // neighbor; refill lazily at the k-NN phase. The comparison
          // uses the exact squared threshold (not the rounded radius) so
          // exact distance ties dirty the query too.
          if (SquaredDistance(q->circle.center, o->loc) <= q->knn_dist2) {
            out->knn_dirty.push_back(qid);
          }
          break;
      }
    }
  }
  if (batch) MatchProbeBatches(out);
}

void QueryProcessor::MatchProbeBatches(MatchOutput* out) const {
  // The deferred positive side of the batch object pass. Per (query,
  // object) pair this evaluates the exact same predicate the scalar loop
  // would have (the predictive case reduces to the rect+window kernel
  // because every sampled object has zero velocity), and delta signs are
  // decided on the same pre-pass state — so after canonicalization the
  // tick's update stream is byte-identical to the pre-batch path.
  std::vector<SlotProbe>& probes = out->probes;
  if (probes.empty()) return;
  std::sort(probes.begin(), probes.end(),
            [](const SlotProbe& a, const SlotProbe& b) {
              return a.slot != b.slot ? a.slot < b.slot : a.oid < b.oid;
            });
  CandidateBatch& b = out->batch;
  for (size_t g0 = 0; g0 < probes.size();) {
    size_t g1 = g0 + 1;
    while (g1 < probes.size() && probes[g1].slot == probes[g0].slot) ++g1;
    const size_t n = g1 - g0;
    b.clear();
    b.ids.reserve(n);
    for (size_t i = g0; i < g1; ++i) {
      const SlotProbe& p = probes[i];
      b.ids.push_back(p.oid);
      b.x.push_back(p.x);
      b.y.push_back(p.y);
      b.t.push_back(p.t);
    }
    const size_t words = MatchBitmapWords(n);
    b.bits.resize(words);
    b.bits2.resize(words);
    // All group members share one grid slot; its stub list (unique qids)
    // is the exact candidate set the degenerate point-rect walk produces
    // for each of them.
    grid_->ForEachQueryAt(Point{probes[g0].x, probes[g0].y}, [&](QueryId qid) {
      const QueryRecord* q = queries_.Find(qid);
      STQ_DCHECK(q != nullptr) << "grid stub references missing query " << qid;
      switch (q->kind) {
        case QueryKind::kRange:
          MatchKernels::PointsInRect(b.x.data(), b.y.data(), n, q->region,
                                     b.bits.data());
          break;
        case QueryKind::kPredictiveRange:
          // Sampled movers have zero velocity, so the full trajectory
          // test reduces to rect containment AND a non-empty effective
          // window — the vectorizable kernel.
          MatchKernels::PointsInRectWindow(b.x.data(), b.y.data(), b.t.data(),
                                           n, q->region, q->t_from, q->t_to,
                                           options_.prediction_horizon,
                                           b.bits.data());
          break;
        case QueryKind::kCircleRange:
          MatchKernels::PointsInCircle(b.x.data(), b.y.data(), n,
                                       q->circle.center,
                                       q->circle.radius * q->circle.radius,
                                       b.bits.data());
          MatchKernels::PointsInRect(b.x.data(), b.y.data(), n,
                                     options_.bounds, b.bits2.data());
          for (size_t w = 0; w < words; ++w) b.bits[w] &= b.bits2[w];
          break;
        case QueryKind::kKnn: {
          MatchKernels::PointsInCircle(b.x.data(), b.y.data(), n,
                                       q->circle.center, q->knn_dist2,
                                       b.bits.data());
          for (size_t w = 0; w < words; ++w) {
            if (b.bits[w] != 0) {
              // One mark suffices: the dirty set deduplicates.
              out->knn_dirty.push_back(qid);
              break;
            }
          }
          return;
        }
      }
      for (size_t w = 0; w < words; ++w) {
        uint64_t word = b.bits[w];
        while (word != 0) {
          const size_t i =
              w * 64 + static_cast<size_t>(std::countr_zero(word));
          word &= word - 1;
          out->deltas.push_back(MatchDelta{qid, b.ids[i], true});
        }
      }
    });
    g0 = g1;
  }
}

void QueryProcessor::ApplyMatchDeltas(std::vector<MatchOutput>& outputs,
                                      std::vector<Update>* out) {
  // Shard order equals `moved` order, so this replay emits the same
  // update sequence the serial pass would have; SetMembership makes
  // duplicate decisions for one (query, object) pair no-ops.
  for (const MatchOutput& m : outputs) {
    for (const MatchDelta& d : m.deltas) {
      ObjectRecord* o = objects_.FindMutable(d.oid);
      QueryRecord* q = queries_.FindMutable(d.qid);
      STQ_DCHECK(o != nullptr && q != nullptr);
      SetMembership(o, q, d.add, out);
    }
    for (QueryId qid : m.knn_dirty) knn_.MarkDirty(qid);
  }
}

void QueryProcessor::RunObjectPass(const std::vector<ObjectId>& moved,
                                   std::vector<Update>* out,
                                   TickStats* stats) {
  const int shards = pool_ == nullptr ? 1 : pool_->num_workers();
  std::vector<MatchOutput>& outputs = scratch_.match_outputs;
  outputs.resize(static_cast<size_t>(shards));
  for (MatchOutput& m : outputs) m.clear();
  {
    PhaseTimer timer(&stats->object_match_seconds);
    if (pool_ != nullptr) {
      pool_->RunShards(moved.size(),
                       [&](int shard, size_t begin, size_t end) {
                         MatchObjectShard(moved, begin, end,
                                          &outputs[static_cast<size_t>(shard)]);
                       });
    } else {
      MatchObjectShard(moved, 0, moved.size(), &outputs[0]);
    }
  }
  PhaseTimer timer(&stats->object_apply_seconds);
  ApplyMatchDeltas(outputs, out);
}

TickResult QueryProcessor::EvaluateTick(Timestamp now) {
  TickResult result;
  EvaluateTickInto(now, &result);
  return result;
}

void QueryProcessor::EvaluateTickInto(Timestamp now, TickResult* result) {
  if (sharded_ != nullptr) {
    sharded_->EvaluateTickInto(now, result);
    return;
  }
  if (now < last_tick_time_) {
    STQ_LOG(Warning) << "EvaluateTick time went backwards (" << now << " < "
                     << last_tick_time_ << ")";
  }
  last_tick_time_ = now;

  const uint64_t allocs_before = AllocCount();

  result->time = now;
  result->updates.clear();
  result->stats = TickStats{};

  // The tick's working vectors live in scratch_ and keep their capacity
  // across ticks; Drain clears them before refilling.
  std::vector<PendingObjectUpsert>& upserts = scratch_.upserts;
  std::vector<ObjectId>& removals = scratch_.removals;
  std::vector<PendingQueryChange>& query_changes = scratch_.query_changes;
  {
    // Report routing (drain + deterministic ordering) — the single-grid
    // counterpart of the sharded router's route phase, so the ablation
    // rows stay comparable across engine modes.
    PhaseTimer route_timer(&result->stats.shard_route_seconds);
    buffer_.Drain(&upserts, &removals, &query_changes);

    // Deterministic processing order independent of hash-map iteration.
    std::sort(upserts.begin(), upserts.end(),
              [](const PendingObjectUpsert& a, const PendingObjectUpsert& b) {
                return a.id < b.id;
              });
    std::sort(removals.begin(), removals.end());
    std::sort(query_changes.begin(), query_changes.end(),
              [](const PendingQueryChange& a, const PendingQueryChange& b) {
                return a.id < b.id;
              });
  }

  std::vector<Update>* out = &result->updates;
  std::vector<ObjectId>& moved = scratch_.moved;
  std::vector<std::pair<QueryId, Rect>>& changed_rects = scratch_.changed_rects;
  std::vector<QueryId>& moved_circles = scratch_.moved_circles;
  moved.clear();
  changed_rects.clear();
  moved_circles.clear();

  const auto tick_start = std::chrono::steady_clock::now();
  // Phase 1: removals leave the engine (negatives for their memberships).
  {
    PhaseTimer timer(&result->stats.removals_seconds);
    ApplyObjectRemovals(removals, now, out, &result->stats);
  }
  // Phase 2: bring every object's state (store + grid) up to date.
  {
    PhaseTimer timer(&result->stats.upserts_seconds);
    ApplyObjectUpserts(upserts, &moved, &result->stats);
  }
  // Phase 3: bring every query's state up to date.
  {
    PhaseTimer timer(&result->stats.query_changes_seconds);
    ApplyQueryChanges(query_changes, now, &changed_rects, &moved_circles,
                      &result->stats);
  }
  // Phase 4: incremental evaluation of changed range/predictive/circle
  // regions.
  {
    PhaseTimer timer(&result->stats.query_pass_seconds);
    RunQueryPass(changed_rects, moved_circles, out);
  }
  // Phase 5: incremental evaluation of moved/new objects (parallel match,
  // serial apply; times the halves into object_match/apply_seconds).
  RunObjectPass(moved, out, &result->stats);
  // Phase 6: re-evaluate the k-NN queries dirtied by phases 1-5
  // (parallel searches, serial answer application).
  {
    std::vector<KnnEvaluator::DirtyAnswer> knn_answers;
    {
      PhaseTimer timer(&result->stats.knn_search_seconds);
      knn_answers = knn_.SearchDirty(pool_.get());
    }
    PhaseTimer timer(&result->stats.knn_apply_seconds);
    result->stats.knn_reevaluations = knn_.ApplyDirty(knn_answers, out);
  }
  // The single grid is one "shard": wall == busy == max over phases 1-6.
  // Populated in every mode so the ablation's single-grid baseline row is
  // directly comparable to the sharded rows.
  const double tick_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    tick_start)
          .count();
  result->stats.shards_ticked = 1;
  result->stats.shard_tick_wall_seconds += tick_wall;
  result->stats.shard_tick_busy_seconds += tick_wall;
  result->stats.shard_tick_max_seconds =
      std::max(result->stats.shard_tick_max_seconds, tick_wall);

  {
    // Canonicalization is the single-grid analogue of the sharded merge.
    PhaseTimer merge_timer(&result->stats.shard_merge_seconds);
    CanonicalizeUpdates(out);
  }
  for (const Update& u : *out) {
    if (u.sign == UpdateSign::kPositive) {
      ++result->stats.positive_updates;
    } else {
      ++result->stats.negative_updates;
    }
  }
  // Phase 7 (adaptive mode only): resolution maintenance on the
  // now-committed state. Pure index re-bucketing — the stream above is
  // already sealed, and the next tick's exact-geometry matching is
  // resolution-independent, so this is invisible in every future stream.
  if (refiner_ != nullptr) {
    PhaseTimer timer(&result->stats.adapt_seconds);
    const GridRefiner::StepStats adapt = refiner_->Tick(objects_, queries_);
    result->stats.cells_split = adapt.splits;
    result->stats.cells_merged = adapt.merges;
  }
  result->stats.bytes_resident = AnswerBytesResident();
  result->stats.heap_allocations = AllocCount() - allocs_before;
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

Result<std::vector<ObjectId>> QueryProcessor::CurrentAnswer(
    QueryId id) const {
  if (sharded_ != nullptr) return sharded_->CurrentAnswer(id);
  const QueryRecord* q = queries_.Find(id);
  if (q == nullptr) {
    std::ostringstream os;
    os << "query " << id << " unknown";
    return Status::NotFound(os.str());
  }
  return q->SortedAnswer();
}

Result<std::vector<ObjectId>> QueryProcessor::EvaluateFromScratch(
    QueryId id) const {
  if (sharded_ != nullptr) return sharded_->EvaluateFromScratch(id);
  const QueryRecord* q = queries_.Find(id);
  if (q == nullptr) {
    std::ostringstream os;
    os << "query " << id << " unknown";
    return Status::NotFound(os.str());
  }
  std::vector<ObjectId> answer;
  switch (q->kind) {
    case QueryKind::kRange:
      objects_.ForEach([&](const ObjectRecord& o) {
        if (RangeEvaluator::Satisfies(o, *q)) answer.push_back(o.id);
      });
      break;
    case QueryKind::kPredictiveRange:
      objects_.ForEach([&](const ObjectRecord& o) {
        if (PredictiveEvaluator::Satisfies(o, *q, options_)) {
          answer.push_back(o.id);
        }
      });
      break;
    case QueryKind::kCircleRange:
      objects_.ForEach([&](const ObjectRecord& o) {
        if (CircleEvaluator::Satisfies(o, *q, options_.bounds)) {
          answer.push_back(o.id);
        }
      });
      break;
    case QueryKind::kKnn: {
      std::vector<KnnEvaluator::Neighbor> all;
      all.reserve(objects_.size());
      objects_.ForEach([&](const ObjectRecord& o) {
        all.push_back(KnnEvaluator::Neighbor{
            SquaredDistance(q->circle.center, o.loc), o.id});
      });
      const size_t keep = std::min(all.size(), static_cast<size_t>(q->k));
      std::partial_sort(all.begin(), all.begin() + keep, all.end());
      for (size_t i = 0; i < keep; ++i) answer.push_back(all[i].id);
      break;
    }
  }
  std::sort(answer.begin(), answer.end());
  return answer;
}

Result<std::vector<ObjectId>> QueryProcessor::EvaluatePastRangeQuery(
    const Rect& region, Timestamp t) const {
  if (sharded_ != nullptr) {
    return sharded_->EvaluatePastRangeQuery(region, t);
  }
  if (history_ == nullptr) {
    return Status::FailedPrecondition(
        "past queries require QueryProcessorOptions::record_history");
  }
  return history_->RangeAt(ClampRegion(region), t);
}

int QueryProcessor::worker_threads() const {
  if (sharded_ != nullptr) return sharded_->worker_threads();
  return pool_ == nullptr ? 1 : pool_->num_workers();
}

size_t QueryProcessor::num_objects() const {
  return sharded_ != nullptr ? sharded_->num_objects() : objects_.size();
}

size_t QueryProcessor::num_queries() const {
  return sharded_ != nullptr ? sharded_->num_queries() : queries_.size();
}

size_t QueryProcessor::pending_reports() const {
  if (sharded_ != nullptr) return sharded_->pending_reports();
  return buffer_.pending_object_ops() + buffer_.pending_query_ops();
}

bool QueryProcessor::HasQuery(QueryId id) const {
  return sharded_ != nullptr ? sharded_->HasQuery(id) : queries_.Contains(id);
}

const ObjectStore& QueryProcessor::object_store() const {
  STQ_CHECK(sharded_ == nullptr)
      << "object_store() is single-grid only; use sharded_engine()->shard(s)";
  return objects_;
}

const QueryStore& QueryProcessor::query_store() const {
  STQ_CHECK(sharded_ == nullptr)
      << "query_store() is single-grid only; use sharded_engine()->shard(s)";
  return queries_;
}

const GridIndex& QueryProcessor::grid() const {
  STQ_CHECK(sharded_ == nullptr)
      << "grid() is single-grid only; use sharded_engine()->shard(s)";
  return *grid_;
}

ObjectStore& QueryProcessor::object_store_for_testing() {
  STQ_CHECK(sharded_ == nullptr)
      << "object_store_for_testing() is single-grid only";
  return objects_;
}

QueryStore& QueryProcessor::query_store_for_testing() {
  STQ_CHECK(sharded_ == nullptr)
      << "query_store_for_testing() is single-grid only";
  return queries_;
}

GridIndex& QueryProcessor::grid_for_testing() {
  STQ_CHECK(sharded_ == nullptr) << "grid_for_testing() is single-grid only";
  return *grid_;
}

const HistoryStore* QueryProcessor::history() const {
  return sharded_ != nullptr ? sharded_->history() : history_.get();
}

bool QueryProcessor::GetAnswerSet(QueryId id, AnswerSet* out) const {
  if (sharded_ != nullptr) return sharded_->GetAnswerSet(id, out);
  out->clear();
  const QueryRecord* q = queries_.Find(id);
  if (q == nullptr) return false;
  *out = q->answer;
  return true;
}

size_t QueryProcessor::AnswerBytesResident() const {
  if (sharded_ != nullptr) return sharded_->AnswerBytesResident();
  size_t bytes = 0;
  queries_.ForEach(
      [&](const QueryRecord& q) { bytes += q.answer.bytes_resident(); });
  return bytes;
}

bool QueryProcessor::AppendAnswerIds(QueryId id,
                                     std::vector<ObjectId>* out) const {
  STQ_CHECK(sharded_ == nullptr)
      << "AppendAnswerIds() is single-grid only; the router owns the "
         "sharded committed answers";
  const QueryRecord* q = queries_.Find(id);
  if (q == nullptr) return false;
  for (ObjectId oid : q->answer) out->push_back(oid);
  return true;
}

std::vector<KnnEvaluator::Neighbor> QueryProcessor::SearchKnn(
    const Point& center, int k) const {
  if (sharded_ != nullptr) return sharded_->SearchKnn(center, k);
  if (k < 1) return {};
  return knn_.Search(center, k);
}

void QueryProcessor::ForEachObjectInfo(
    // stq-lint: allow(alloc-discipline/function): cold introspection walk
    const std::function<void(const ObjectInfo&)>& fn) const {
  if (sharded_ != nullptr) {
    sharded_->ForEachObjectInfo(fn);
    return;
  }
  objects_.ForEach([&](const ObjectRecord& o) {
    ObjectInfo info;
    info.id = o.id;
    info.loc = o.loc;
    info.vel = o.vel;
    info.t = o.t;
    info.predictive = o.predictive;
    info.qlist_size = o.queries.size();
    fn(info);
  });
}

void QueryProcessor::ForEachQueryInfo(
    // stq-lint: allow(alloc-discipline/function): cold introspection walk
    const std::function<void(const QueryInfo&)>& fn) const {
  if (sharded_ != nullptr) {
    sharded_->ForEachQueryInfo(fn);
    return;
  }
  queries_.ForEach([&](const QueryRecord& q) {
    QueryInfo info;
    info.id = q.id;
    info.kind = q.kind;
    info.region = q.region;
    info.circle = q.circle;
    info.k = q.k;
    info.t_from = q.t_from;
    info.t_to = q.t_to;
    info.answer_size = q.answer.size();
    fn(info);
  });
}

Status QueryProcessor::CheckInvariants() const {
  return InvariantAuditor().AuditProcessor(*this).ToStatus();
}

}  // namespace stq
