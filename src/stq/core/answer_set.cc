#include "stq/core/answer_set.h"

#include <bit>

namespace stq {

namespace {

inline uint64_t BaseOf(ObjectId id) { return id >> AnswerSet::kBlockShift; }
inline uint32_t OffsetOf(ObjectId id) {
  return static_cast<uint32_t>(id & (AnswerSet::kBlockSpan - 1));
}

}  // namespace

bool AnswerSet::insert(ObjectId id) {
  if (blocked_) return BlockedInsert(id);
  auto it = std::lower_bound(small_.begin(), small_.end(), id);
  if (it != small_.end() && *it == id) return false;
  small_.insert(it, id);
  ++size_;
  if (size_ > kBlockedPromote) PromoteToBlocks();
  return true;
}

bool AnswerSet::erase(ObjectId id) {
  if (blocked_) {
    if (!BlockedErase(id)) return false;
    --size_;
    if (size_ < kBlockedDemote) DemoteToSmall();
    return true;
  }
  auto it = std::lower_bound(small_.begin(), small_.end(), id);
  if (it == small_.end() || *it != id) return false;
  small_.erase(it);
  --size_;
  return true;
}

bool AnswerSet::contains(ObjectId id) const {
  if (!blocked_) {
    auto it = std::lower_bound(small_.begin(), small_.end(), id);
    return it != small_.end() && *it == id;
  }
  const uint64_t base = BaseOf(id);
  auto it = FindBlock(base);
  if (it == blocks_.end() || it->base != base) return false;
  const uint32_t off = OffsetOf(id);
  if (it->bits != nullptr) {
    return ((*it->bits)[off >> 6] >> (off & 63)) & 1u;
  }
  const uint16_t off16 = static_cast<uint16_t>(off);
  auto sit = std::lower_bound(it->sparse.begin(), it->sparse.end(), off16);
  return sit != it->sparse.end() && *sit == off16;
}

bool AnswerSet::BlockedInsert(ObjectId id) {
  const uint64_t base = BaseOf(id);
  const uint32_t off = OffsetOf(id);
  auto it = FindBlock(base);
  if (it == blocks_.end() || it->base != base) {
    Block b;
    b.base = base;
    b.count = 1;
    b.sparse.push_back(static_cast<uint16_t>(off));
    blocks_.insert(it, std::move(b));
    ++size_;
    return true;
  }
  if (it->bits != nullptr) {
    uint64_t& word = (*it->bits)[off >> 6];
    const uint64_t mask = uint64_t{1} << (off & 63);
    if (word & mask) return false;
    word |= mask;
    ++it->count;
    ++size_;
    return true;
  }
  const uint16_t off16 = static_cast<uint16_t>(off);
  auto sit = std::lower_bound(it->sparse.begin(), it->sparse.end(), off16);
  if (sit != it->sparse.end() && *sit == off16) return false;
  it->sparse.insert(sit, off16);
  ++it->count;
  ++size_;
  if (it->count > kDensePromote) ToDense(&*it);
  return true;
}

bool AnswerSet::BlockedErase(ObjectId id) {
  const uint64_t base = BaseOf(id);
  const uint32_t off = OffsetOf(id);
  auto it = FindBlock(base);
  if (it == blocks_.end() || it->base != base) return false;
  if (it->bits != nullptr) {
    uint64_t& word = (*it->bits)[off >> 6];
    const uint64_t mask = uint64_t{1} << (off & 63);
    if (!(word & mask)) return false;
    word &= ~mask;
    --it->count;
    if (it->count < kDenseDemote) ToSparse(&*it);
    return true;
  }
  const uint16_t off16 = static_cast<uint16_t>(off);
  auto sit = std::lower_bound(it->sparse.begin(), it->sparse.end(), off16);
  if (sit == it->sparse.end() || *sit != off16) return false;
  it->sparse.erase(sit);
  --it->count;
  if (it->count == 0) blocks_.erase(it);
  return true;
}

void AnswerSet::PromoteToBlocks() {
  STQ_DCHECK(!blocked_);
  blocks_.clear();
  for (ObjectId id : small_) {
    const uint64_t base = BaseOf(id);
    if (blocks_.empty() || blocks_.back().base != base) {
      Block b;
      b.base = base;
      blocks_.push_back(std::move(b));
    }
    Block& blk = blocks_.back();
    const uint32_t off = OffsetOf(id);
    if (blk.bits != nullptr) {
      (*blk.bits)[off >> 6] |= uint64_t{1} << (off & 63);
    } else {
      blk.sparse.push_back(static_cast<uint16_t>(off));  // already sorted
    }
    ++blk.count;
    if (blk.bits == nullptr && blk.count > kDensePromote) ToDense(&blk);
  }
  small_.clear();
  small_.shrink_to_fit();
  blocked_ = true;
}

void AnswerSet::DemoteToSmall() {
  STQ_DCHECK(blocked_);
  small_.clear();
  small_.reserve(size_);
  for (const Block& blk : blocks_) {
    const uint64_t hi = blk.base << kBlockShift;
    if (blk.bits != nullptr) {
      for (size_t w = 0; w < kWordsPerBlock; ++w) {
        uint64_t word = (*blk.bits)[w];
        while (word != 0) {
          const int bit = std::countr_zero(word);
          small_.push_back(hi + w * 64 + static_cast<uint64_t>(bit));
          word &= word - 1;
        }
      }
    } else {
      for (uint16_t off : blk.sparse) small_.push_back(hi + off);
    }
  }
  blocks_.clear();
  blocks_.shrink_to_fit();
  blocked_ = false;
}

void AnswerSet::ToDense(Block* b) {
  STQ_DCHECK(b->bits == nullptr);
  b->bits = std::make_unique<std::array<uint64_t, kWordsPerBlock>>();
  b->bits->fill(0);
  for (uint16_t off : b->sparse) {
    (*b->bits)[off >> 6] |= uint64_t{1} << (off & 63);
  }
  b->sparse.clear();
}

void AnswerSet::ToSparse(Block* b) {
  STQ_DCHECK(b->bits != nullptr);
  b->sparse.clear();
  for (size_t w = 0; w < kWordsPerBlock; ++w) {
    uint64_t word = (*b->bits)[w];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      b->sparse.push_back(static_cast<uint16_t>(w * 64 + bit));
      word &= word - 1;
    }
  }
  b->bits.reset();
}

size_t AnswerSet::bytes_resident() const {
  size_t bytes = sizeof(*this);
  bytes += small_.capacity() * sizeof(ObjectId);
  bytes += blocks_.capacity() * sizeof(Block);
  for (const Block& blk : blocks_) {
    if (blk.bits != nullptr) bytes += sizeof(*blk.bits);
    // The SmallVector's inline lanes are already inside sizeof(Block);
    // only a spilled heap buffer adds resident bytes.
    if (blk.sparse.capacity() > 8) {
      bytes += blk.sparse.capacity() * sizeof(uint16_t);
    }
  }
  return bytes;
}

AnswerSet::const_iterator AnswerSet::begin() const {
  if (!blocked_) return const_iterator(this, 0, 0);
  if (blocks_.empty()) return end();
  return const_iterator(this, 0, FirstPos(0));
}

size_t AnswerSet::FirstPos(size_t block) const {
  const Block& blk = blocks_[block];
  if (blk.bits == nullptr) return 0;
  for (size_t w = 0; w < kWordsPerBlock; ++w) {
    const uint64_t word = (*blk.bits)[w];
    if (word != 0) {
      return w * 64 + static_cast<size_t>(std::countr_zero(word));
    }
  }
  STQ_CHECK(false) << "dense answer block with no set bits";
  return 0;
}

ObjectId AnswerSet::Deref(size_t block, size_t pos) const {
  if (!blocked_) return small_[pos];
  const Block& blk = blocks_[block];
  const uint64_t hi = blk.base << kBlockShift;
  if (blk.bits == nullptr) return hi + blk.sparse[pos];
  return hi + pos;
}

void AnswerSet::Advance(size_t* block, size_t* pos) const {
  if (!blocked_) {
    ++*pos;
    return;
  }
  const Block& blk = blocks_[*block];
  if (blk.bits == nullptr) {
    if (++*pos < blk.sparse.size()) return;
  } else {
    // Next set bit strictly after *pos.
    size_t bit = *pos + 1;
    size_t w = bit >> 6;
    while (w < kWordsPerBlock) {
      uint64_t word = (*blk.bits)[w] & (~uint64_t{0} << (bit & 63));
      if (word != 0) {
        *pos = w * 64 + static_cast<size_t>(std::countr_zero(word));
        return;
      }
      ++w;
      bit = w * 64;
    }
  }
  ++*block;
  *pos = *block < blocks_.size() ? FirstPos(*block) : 0;
}

void AnswerSet::CopyFrom(const AnswerSet& other) {
  small_ = other.small_;
  size_ = other.size_;
  blocked_ = other.blocked_;
  blocks_.clear();
  blocks_.reserve(other.blocks_.size());
  for (const Block& src : other.blocks_) {
    Block b;
    b.base = src.base;
    b.count = src.count;
    b.sparse = src.sparse;
    if (src.bits != nullptr) {
      b.bits = std::make_unique<std::array<uint64_t, kWordsPerBlock>>(*src.bits);
    }
    blocks_.push_back(std::move(b));
  }
}

}  // namespace stq
