#include "stq/core/committed_store.h"

namespace stq {

namespace {
const FlatSet<ObjectId>& EmptySet() {
  // stq-lint: allow(alloc-discipline/new): intentionally leaked singleton
  static const auto* kEmpty = new FlatSet<ObjectId>();
  return *kEmpty;
}
}  // namespace

void CommittedStore::Commit(QueryId qid, const FlatSet<ObjectId>& answer) {
  map_[qid] = answer;
}

void CommittedStore::Erase(QueryId qid) { map_.erase(qid); }

const FlatSet<ObjectId>& CommittedStore::Committed(QueryId qid) const {
  auto it = map_.find(qid);
  return it == map_.end() ? EmptySet() : it->second;
}

std::vector<Update> CommittedStore::DiffAgainstCommitted(
    QueryId qid, const FlatSet<ObjectId>& current) const {
  const FlatSet<ObjectId>& committed = Committed(qid);
  std::vector<Update> diff;
  for (ObjectId oid : committed) {
    if (!current.contains(oid)) diff.push_back(Update::Negative(qid, oid));
  }
  for (ObjectId oid : current) {
    if (!committed.contains(oid)) diff.push_back(Update::Positive(qid, oid));
  }
  CanonicalizeUpdates(&diff);
  return diff;
}

}  // namespace stq
