#include "stq/core/committed_store.h"

namespace stq {

namespace {
const AnswerSet& EmptySet() {
  // stq-lint: allow(alloc-discipline/new): intentionally leaked singleton
  static const auto* kEmpty = new AnswerSet();
  return *kEmpty;
}
}  // namespace

void CommittedStore::Commit(QueryId qid, const AnswerSet& answer) {
  map_[qid] = answer;
}

void CommittedStore::Commit(QueryId qid, AnswerSet&& answer) {
  map_[qid] = std::move(answer);
}

void CommittedStore::Erase(QueryId qid) { map_.erase(qid); }

const AnswerSet& CommittedStore::Committed(QueryId qid) const {
  auto it = map_.find(qid);
  return it == map_.end() ? EmptySet() : it->second;
}

std::vector<Update> CommittedStore::DiffAgainstCommitted(
    QueryId qid, const AnswerSet& current) const {
  const AnswerSet& committed = Committed(qid);
  std::vector<Update> diff;
  for (ObjectId oid : committed) {
    if (!current.contains(oid)) diff.push_back(Update::Negative(qid, oid));
  }
  for (ObjectId oid : current) {
    if (!committed.contains(oid)) diff.push_back(Update::Positive(qid, oid));
  }
  CanonicalizeUpdates(&diff);
  return diff;
}

size_t CommittedStore::bytes_resident() const {
  size_t bytes = 0;
  for (const auto& [qid, answer] : map_) bytes += answer.bytes_resident();
  return bytes;
}

}  // namespace stq
