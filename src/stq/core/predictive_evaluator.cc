#include "stq/core/predictive_evaluator.h"

#include <algorithm>

#include "stq/common/check.h"
#include "stq/geo/geometry.h"

namespace stq {

bool PredictiveEvaluator::Satisfies(const ObjectRecord& o,
                                    const QueryRecord& q,
                                    const QueryProcessorOptions& options) {
  const double window_from = std::max(q.t_from, o.t);
  const double window_to = std::min(q.t_to, o.t + options.prediction_horizon);
  if (window_to < window_from) return false;
  return TrajectoryIntersectsRect(o.trajectory(), q.region, window_from,
                                  window_to, /*t_hit=*/nullptr);
}

void PredictiveEvaluator::OnQueryRegionChanged(QueryRecord* q,
                                               const Rect& old_region,
                                               std::vector<Update>* out) {
  // Negatives: members whose trajectory no longer satisfies the new
  // region within the window.
  std::vector<ObjectId>& leavers = leavers_scratch_;
  leavers.clear();
  for (ObjectId oid : q->answer) {
    const ObjectRecord* o = state_.objects->Find(oid);
    STQ_DCHECK(o != nullptr);
    if (!Satisfies(*o, *q, *state_.options)) leavers.push_back(oid);
  }
  for (ObjectId oid : leavers) {
    SetMembership(state_.objects->FindMutable(oid), q, false, out);
  }

  // Positives: a trajectory that satisfies the new region but not the old
  // one must pass through A_new - A_old during the window, so its grid
  // footprint crosses a cell overlapping the difference — candidates from
  // those cells suffice. The admission test runs against the full new
  // region (the hit instant may lie inside A_new ∩ A_old).
  FlatSet<ObjectId>& tested = tested_scratch_;
  tested.clear();
  RectDifference(q->region, old_region, &pieces_scratch_);
  if (state_.options->batch_evaluation) {
    // Batch path: gather all pieces' candidates (deduplicated, first-visit
    // order — the same order the legacy loop tests them in) with their
    // velocity lanes, then run the trajectory-window kernel once against
    // the full new region.
    CandidateBatch& b = batch_scratch_;
    b.clear();
    for (const Rect& piece : pieces_scratch_) {
      state_.grid->ForEachObjectCandidate(piece, [&](ObjectId oid) {
        if (!tested.insert(oid).second) return;
        const ObjectRecord* o = state_.objects->Find(oid);
        STQ_DCHECK(o != nullptr);
        b.GatherWithVelocity(*o);
      });
    }
    const size_t n = b.size();
    if (n == 0) return;
    b.bits.resize(MatchBitmapWords(n));
    MatchKernels::TrajectoriesIntersectRectWindow(
        b.x.data(), b.y.data(), b.vx.data(), b.vy.data(), b.t.data(), n,
        q->region, q->t_from, q->t_to, state_.options->prediction_horizon,
        b.bits.data());
    EmitBatchPositives(b, state_.objects, q, out);
    return;
  }
  for (const Rect& piece : pieces_scratch_) {
    state_.grid->ForEachObjectCandidate(piece, [&](ObjectId oid) {
      if (!tested.insert(oid).second) return;
      ObjectRecord* o = state_.objects->FindMutable(oid);
      STQ_DCHECK(o != nullptr);
      if (Satisfies(*o, *q, *state_.options)) {
        SetMembership(o, q, true, out);
      }
    });
  }
}

}  // namespace stq
