#include "stq/core/density_monitor.h"

#include "stq/common/check.h"

namespace stq {

DensityMonitor::DensityMonitor(const GridIndex* grid, size_t threshold)
    : grid_(grid), threshold_(threshold) {
  STQ_CHECK(grid_ != nullptr);
  STQ_CHECK(threshold_ >= 1) << "a zero threshold makes every cell dense";
}

std::vector<DenseCellUpdate> DensityMonitor::Tick() {
  std::vector<DenseCellUpdate> updates;
  std::set<std::pair<int, int>> fresh;
  for (int cy = 0; cy < grid_->cells_y(); ++cy) {
    for (int cx = 0; cx < grid_->cells_x(); ++cx) {
      const CellCoord cell{cx, cy};
      const size_t count = grid_->ObjectCountInCell(cell);
      if (count < threshold_) continue;
      fresh.insert(Key(cell));
      if (!dense_.contains(Key(cell))) {
        updates.push_back(
            DenseCellUpdate{cell, UpdateSign::kPositive, count});
      }
    }
  }
  for (const auto& [cy, cx] : dense_) {
    if (!fresh.contains({cy, cx})) {
      const CellCoord cell{cx, cy};
      updates.push_back(DenseCellUpdate{cell, UpdateSign::kNegative,
                                        grid_->ObjectCountInCell(cell)});
    }
  }
  dense_ = std::move(fresh);
  return updates;
}

std::vector<CellCoord> DensityMonitor::DenseCells() const {
  std::vector<CellCoord> cells;
  cells.reserve(dense_.size());
  for (const auto& [cy, cx] : dense_) cells.push_back(CellCoord{cx, cy});
  return cells;
}

}  // namespace stq
