#include "stq/core/transport.h"

#include <algorithm>

#include "stq/common/crc32.h"
#include "stq/storage/coding.h"

namespace stq {

namespace {

constexpr uint32_t kEnvelopeMagic = 0x53545145;  // "STQE"
constexpr uint8_t kEnvelopeVersion = 1;

// Encoded sizes used to bound count fields against the remaining bytes
// before any allocation (a fuzzed count must not drive a huge reserve).
constexpr size_t kUpdateWireSize = 8 + 8 + 1;
constexpr size_t kAnswerHeaderWireSize = 8 + 4;

}  // namespace

void EncodeEnvelope(const Envelope& env, std::string* out) {
  out->clear();
  PutFixed32(out, kEnvelopeMagic);
  PutByte(out, kEnvelopeVersion);
  PutByte(out, static_cast<uint8_t>(env.kind));
  PutFixed64(out, env.client);
  PutFixed64(out, env.seq);
  PutDouble(out, env.tick_time);
  PutFixed64(out, env.wire_bytes);
  PutFixed32(out, static_cast<uint32_t>(env.updates.size()));
  for (const Update& u : env.updates) {
    PutFixed64(out, u.query);
    PutFixed64(out, u.object);
    PutByte(out, static_cast<uint8_t>(u.sign));
  }
  PutFixed32(out, static_cast<uint32_t>(env.full_answers.size()));
  for (const auto& [qid, answer] : env.full_answers) {
    PutFixed64(out, qid);
    PutFixed32(out, static_cast<uint32_t>(answer.size()));
    for (ObjectId oid : answer) PutFixed64(out, oid);
  }
  PutFixed32(out, Crc32c(out->data(), out->size()));
}

Status DecodeEnvelope(const std::string& encoded, Envelope* env) {
  size_t offset = 0;
  uint32_t magic = 0;
  uint8_t version = 0;
  uint8_t kind = 0;
  if (!GetFixed32(encoded, &offset, &magic) || magic != kEnvelopeMagic) {
    return Status::Corruption("envelope: bad magic");
  }
  if (!GetByte(encoded, &offset, &version) || version != kEnvelopeVersion) {
    return Status::Corruption("envelope: unknown version");
  }
  if (!GetByte(encoded, &offset, &kind) ||
      kind > static_cast<uint8_t>(EnvelopeKind::kResync)) {
    return Status::Corruption("envelope: unknown kind");
  }
  env->kind = static_cast<EnvelopeKind>(kind);
  if (!GetFixed64(encoded, &offset, &env->client) ||
      !GetFixed64(encoded, &offset, &env->seq) ||
      !GetDouble(encoded, &offset, &env->tick_time) ||
      !GetFixed64(encoded, &offset, &env->wire_bytes)) {
    return Status::Corruption("envelope: truncated header");
  }

  uint32_t n_updates = 0;
  if (!GetFixed32(encoded, &offset, &n_updates) ||
      !DecodeRemaining(encoded, offset,
                       static_cast<size_t>(n_updates) * kUpdateWireSize)) {
    return Status::Corruption("envelope: update count overruns buffer");
  }
  env->updates.clear();
  env->updates.reserve(n_updates);
  for (uint32_t i = 0; i < n_updates; ++i) {
    Update u;
    uint8_t sign = 0;
    if (!GetFixed64(encoded, &offset, &u.query) ||
        !GetFixed64(encoded, &offset, &u.object) ||
        !GetByte(encoded, &offset, &sign)) {
      return Status::Corruption("envelope: truncated update");
    }
    if (sign != static_cast<uint8_t>(UpdateSign::kPositive) &&
        sign != static_cast<uint8_t>(UpdateSign::kNegative)) {
      return Status::Corruption("envelope: bad update sign");
    }
    u.sign = static_cast<UpdateSign>(sign);
    env->updates.push_back(u);
  }

  uint32_t n_answers = 0;
  if (!GetFixed32(encoded, &offset, &n_answers) ||
      !DecodeRemaining(encoded, offset, static_cast<size_t>(n_answers) *
                                            kAnswerHeaderWireSize)) {
    return Status::Corruption("envelope: answer count overruns buffer");
  }
  env->full_answers.clear();
  env->full_answers.reserve(n_answers);
  for (uint32_t i = 0; i < n_answers; ++i) {
    QueryId qid = 0;
    uint32_t count = 0;
    if (!GetFixed64(encoded, &offset, &qid) ||
        !GetFixed32(encoded, &offset, &count) ||
        !DecodeRemaining(encoded, offset, static_cast<size_t>(count) * 8)) {
      return Status::Corruption("envelope: answer overruns buffer");
    }
    std::vector<ObjectId> answer;
    answer.reserve(count);
    for (uint32_t j = 0; j < count; ++j) {
      ObjectId oid = 0;
      if (!GetFixed64(encoded, &offset, &oid)) {
        return Status::Corruption("envelope: truncated answer entry");
      }
      answer.push_back(oid);
    }
    env->full_answers.emplace_back(qid, std::move(answer));
  }

  uint32_t stored_crc = 0;
  const size_t payload_end = offset;
  if (!GetFixed32(encoded, &offset, &stored_crc)) {
    return Status::Corruption("envelope: missing crc");
  }
  if (offset != encoded.size()) {
    return Status::Corruption("envelope: trailing bytes");
  }
  if (Crc32c(encoded.data(), payload_end) != stored_crc) {
    return Status::Corruption("envelope: crc mismatch");
  }
  return Status::OK();
}

// --- PerfectTransport -------------------------------------------------------

void PerfectTransport::Bind(ClientId cid, TransportSink* sink) {
  sinks_[cid] = sink;
}

void PerfectTransport::Unbind(ClientId cid) { sinks_.erase(cid); }

void PerfectTransport::Send(ClientId cid, const std::string& encoded) {
  ++counters_.sent;
  auto it = sinks_.find(cid);
  if (it == sinks_.end()) {
    ++counters_.dropped;
    return;
  }
  ++counters_.delivered;
  it->second->OnEnvelope(encoded);
}

void PerfectTransport::SendControl(ClientId cid, const std::string& encoded) {
  ++counters_.control_sent;
  auto it = sinks_.find(cid);
  if (it == sinks_.end()) {
    ++counters_.dropped;
    return;
  }
  ++counters_.delivered;
  it->second->OnEnvelope(encoded);
}

// --- FaultInjectionTransport ------------------------------------------------

void FaultInjectionTransport::AddFault(const TransportFault& fault) {
  faults_.push_back(FaultState{fault, 0, 0});
}

void FaultInjectionTransport::ClearFaults() { faults_.clear(); }

void FaultInjectionTransport::SetChaosProfile(const ChaosProfile& profile) {
  chaos_ = profile;
  chaos_enabled_ = profile.drop > 0.0 || profile.duplicate > 0.0 ||
                   profile.reorder > 0.0 || profile.delay > 0.0 ||
                   profile.truncate > 0.0;
}

void FaultInjectionTransport::AddPartition(uint64_t from_tick,
                                           uint64_t to_tick,
                                           std::vector<ClientId> clients) {
  partitions_.push_back(Partition{from_tick, to_tick, std::move(clients)});
}

void FaultInjectionTransport::ClearPartitions() { partitions_.clear(); }

void FaultInjectionTransport::Bind(ClientId cid, TransportSink* sink) {
  sinks_[cid] = sink;
}

void FaultInjectionTransport::Unbind(ClientId cid) { sinks_.erase(cid); }

bool FaultInjectionTransport::Partitioned(ClientId cid) const {
  for (const Partition& p : partitions_) {
    if (now_tick_ < p.from_tick || now_tick_ >= p.to_tick) continue;
    if (std::find(p.clients.begin(), p.clients.end(), cid) !=
        p.clients.end()) {
      return true;
    }
  }
  return false;
}

bool FaultInjectionTransport::UplinkUp(ClientId cid) const {
  return !Partitioned(cid);
}

bool FaultInjectionTransport::PickFault(ClientId cid, TransportFault* out) {
  for (FaultState& f : faults_) {
    if (f.spec.client != 0 && f.spec.client != cid) continue;
    const uint64_t n = f.matched++;
    if (n < f.spec.skip) continue;
    if (f.spec.count >= 0 && f.fired >= f.spec.count) continue;
    ++f.fired;
    *out = f.spec;
    return true;
  }
  if (chaos_enabled_) {
    // One roll decides among the profile's faults so their probabilities
    // compose additively and at most one applies per send.
    const double roll = rng_.NextDouble();
    double edge = chaos_.drop;
    if (roll < edge) {
      out->kind = TransportFault::Kind::kDrop;
      return true;
    }
    if (roll < (edge += chaos_.duplicate)) {
      out->kind = TransportFault::Kind::kDuplicate;
      return true;
    }
    if (roll < (edge += chaos_.reorder)) {
      out->kind = TransportFault::Kind::kReorder;
      return true;
    }
    if (roll < (edge += chaos_.delay)) {
      out->kind = TransportFault::Kind::kDelay;
      out->delay_ticks =
          1 + static_cast<int>(rng_.NextUint64(
                  static_cast<uint64_t>(std::max(1, chaos_.max_delay_ticks))));
      return true;
    }
    if (roll < edge + chaos_.truncate) {
      out->kind = TransportFault::Kind::kTruncate;
      // Cut somewhere inside the envelope; the CRC makes any cut point a
      // detected corruption at the receiver.
      out->truncate_at = 0;  // resolved against the actual size in Send
      return true;
    }
  }
  return false;
}

void FaultInjectionTransport::Deliver(ClientId cid,
                                      const std::string& encoded) {
  auto it = sinks_.find(cid);
  if (it == sinks_.end()) {
    ++counters_.dropped;
    return;
  }
  ++counters_.delivered;
  it->second->OnEnvelope(encoded);
}

void FaultInjectionTransport::Send(ClientId cid, const std::string& encoded) {
  ++counters_.sent;
  if (Partitioned(cid)) {
    ++counters_.partition_blocked;
    return;
  }
  TransportFault fault;
  if (!PickFault(cid, &fault)) {
    Deliver(cid, encoded);
    return;
  }
  switch (fault.kind) {
    case TransportFault::Kind::kDrop:
      ++counters_.dropped;
      return;
    case TransportFault::Kind::kDuplicate:
      ++counters_.duplicated;
      Deliver(cid, encoded);
      Deliver(cid, encoded);
      return;
    case TransportFault::Kind::kReorder:
      // Parked until Pump, i.e. behind every envelope sent synchronously
      // later this tick — an in-flight overtake.
      ++counters_.reordered;
      pending_.push_back(Pending{now_tick_, cid, encoded});
      return;
    case TransportFault::Kind::kDelay:
      ++counters_.delayed;
      pending_.push_back(Pending{
          now_tick_ + static_cast<uint64_t>(std::max(1, fault.delay_ticks)),
          cid, encoded});
      return;
    case TransportFault::Kind::kTruncate: {
      ++counters_.truncated;
      size_t cut = fault.truncate_at;
      if (cut == 0 || cut >= encoded.size()) {
        cut = encoded.empty() ? 0 : rng_.NextUint64(encoded.size());
      }
      Deliver(cid, encoded.substr(0, cut));
      return;
    }
  }
}

void FaultInjectionTransport::SendControl(ClientId cid,
                                          const std::string& encoded) {
  ++counters_.control_sent;
  if (Partitioned(cid)) {
    ++counters_.partition_blocked;
    return;
  }
  Deliver(cid, encoded);
}

void FaultInjectionTransport::Pump(uint64_t now_tick) {
  now_tick_ = now_tick;
  // Drop expired partition windows so long chaos/soak runs that keep
  // scheduling flaps don't scan (or hold) an ever-growing list.
  partitions_.erase(
      std::remove_if(partitions_.begin(), partitions_.end(),
                     [&](const Partition& p) { return p.to_tick <= now_tick; }),
      partitions_.end());
  // Deliver matured envelopes in arrival order; re-park the rest. A
  // delivered envelope may race a partition that started after it was
  // sent — tough luck for the receiver, which is exactly the point.
  std::vector<Pending> still_pending;
  still_pending.reserve(pending_.size());
  for (Pending& p : pending_) {
    if (p.release_tick <= now_tick_ && !Partitioned(p.client)) {
      Deliver(p.client, p.encoded);
    } else if (p.release_tick <= now_tick_ && Partitioned(p.client)) {
      ++counters_.partition_blocked;
    } else {
      still_pending.push_back(std::move(p));
    }
  }
  pending_.swap(still_pending);
}

}  // namespace stq
