// Engine-wide statistics: population breakdowns, answer-set volume, grid
// shape, and a rough memory model. Useful for capacity planning and for
// the benchmarks' reporting.

#ifndef STQ_CORE_STATS_H_
#define STQ_CORE_STATS_H_

#include <cstddef>
#include <string>

#include "stq/grid/grid_index.h"

namespace stq {

class QueryProcessor;

struct EngineStats {
  size_t num_objects = 0;
  size_t num_predictive_objects = 0;
  size_t num_queries = 0;
  size_t num_range_queries = 0;
  size_t num_knn_queries = 0;
  size_t num_predictive_queries = 0;
  size_t num_circle_queries = 0;

  // Total answer-set entries across all queries (== total QList entries
  // across all objects when the engine is consistent).
  size_t total_answer_entries = 0;
  size_t total_qlist_entries = 0;
  double mean_answer_size = 0.0;
  size_t max_answer_size = 0;

  GridStats grid;

  // Rough resident-memory model of the engine's data structures.
  size_t approx_memory_bytes = 0;

  std::string DebugString() const;
};

// Computes stats from a consistent engine (no reports pending).
EngineStats ComputeEngineStats(const QueryProcessor& processor);

}  // namespace stq

#endif  // STQ_CORE_STATS_H_
