// Core vocabulary types of the continuous query processor: the positive /
// negative update tuples that form a query's incremental answer stream,
// and the per-tick result envelope.

#ifndef STQ_CORE_TYPES_H_
#define STQ_CORE_TYPES_H_

#include <cstddef>
#include <string>
#include <vector>

#include "stq/common/bytes.h"
#include "stq/common/clock.h"
#include "stq/common/ids.h"

namespace stq {

// "We distinguish between two types of updates; positive updates and
// negative updates. Positive or negative updates indicate that a certain
// object should be added to or removed from the previously reported
// answer, respectively." (paper, Section 1)
enum class UpdateSign : char { kNegative = '-', kPositive = '+' };

struct Update {
  QueryId query = 0;
  ObjectId object = 0;
  UpdateSign sign = UpdateSign::kPositive;

  static Update Positive(QueryId q, ObjectId o) {
    return Update{q, o, UpdateSign::kPositive};
  }
  static Update Negative(QueryId q, ObjectId o) {
    return Update{q, o, UpdateSign::kNegative};
  }

  // "(Q1, +p2)" — the notation used in the paper's examples.
  std::string DebugString() const;

  friend bool operator==(const Update& a, const Update& b) {
    return a.query == b.query && a.object == b.object && a.sign == b.sign;
  }
};

// Removes (+,-) pairs that cancel out within one tick and orders the
// stream deterministically by (query, object), negatives before
// positives. The evaluation passes never produce cancelling pairs for a
// consistent engine state, but callers composing streams may.
void CanonicalizeUpdates(std::vector<Update>* updates);

struct TickStats {
  size_t object_updates_applied = 0;
  size_t object_removals_applied = 0;
  size_t query_changes_applied = 0;
  size_t queries_unregistered = 0;
  size_t positive_updates = 0;
  size_t negative_updates = 0;
  size_t knn_reevaluations = 0;

  // Adaptive-partitioning activity this tick (0 unless
  // AdaptiveGridOptions::enabled): grid cells split one level finer /
  // merged one level coarser, and (sharded engine only) shard-boundary
  // rebalances performed. Under the sharded engine the split/merge
  // counts sum over the per-shard grids.
  size_t cells_split = 0;
  size_t cells_merged = 0;
  size_t shard_rebalances = 0;

  // Heap allocations (global operator-new calls, all threads) during this
  // tick's EvaluateTick. Zero when the build disables STQ_ALLOC_COUNTING
  // (see stq/common/alloc_stats.h); under the sharded engine this is the
  // whole tick's count, not a per-shard sum.
  uint64_t heap_allocations = 0;

  // Resident bytes of every live answer set (per-query incremental
  // answers, compressed representation — see core/answer_set.h) at the
  // end of this tick. Complements heap_allocations: churn is counted
  // there, footprint here, and per-tick byte budgets pin both.
  size_t bytes_resident = 0;

  // Wall-clock seconds spent in each tick phase (steady-clock). The
  // object pass is split into its parallel matching half and its serial
  // delta-replay half so the ablation bench can attribute speedup.
  double removals_seconds = 0.0;
  double upserts_seconds = 0.0;
  double query_changes_seconds = 0.0;
  double query_pass_seconds = 0.0;
  double object_match_seconds = 0.0;
  double object_apply_seconds = 0.0;
  double knn_search_seconds = 0.0;
  double knn_apply_seconds = 0.0;
  // Post-commit adaptive maintenance: grid refinement (summed over
  // shards) and, under the sharded engine, shard-boundary rebalancing.
  double adapt_seconds = 0.0;
  double rebalance_seconds = 0.0;

  // Execution breakdown, populated in every mode so the single-grid
  // baseline row is directly comparable to sharded rows (a single grid
  // reports one "shard" whose busy time equals its wall time). With
  // num_shards > 1 the eight per-phase fields above hold the *sums* over
  // all shard ticks; the fields below attribute the tick's own wall time.
  size_t shards_ticked = 0;        // shards with pending work this tick
  double shard_route_seconds = 0.0;   // serial routing decisions (drain+sort)
  double shard_tick_wall_seconds = 0.0;  // fork/join of per-shard ticks
  double shard_tick_busy_seconds = 0.0;  // sum of per-shard tick walls
  double shard_tick_max_seconds = 0.0;   // slowest shard (critical path)
  double shard_merge_seconds = 0.0;   // refcount merge + canonicalization
  double shard_knn_seconds = 0.0;     // cross-shard k-NN re-dispatch

  // The parallelizable share of this tick (match + k-NN search time).
  double ParallelSeconds() const {
    return object_match_seconds + knn_search_seconds;
  }
  double TotalPhaseSeconds() const {
    return removals_seconds + upserts_seconds + query_changes_seconds +
           query_pass_seconds + object_match_seconds + object_apply_seconds +
           knn_search_seconds + knn_apply_seconds;
  }
};

// The output of one evaluation period: the full stream of incremental
// updates across all registered queries.
struct TickResult {
  Timestamp time = 0.0;
  std::vector<Update> updates;
  TickStats stats;

  // Bytes this tick would put on the wire under `model`.
  size_t WireBytes(const WireCostModel& model) const {
    return model.UpdateBytes(updates.size());
  }
};

}  // namespace stq

#endif  // STQ_CORE_TYPES_H_
