// Client: the client-side mirror of a set of continuous query answers.
//
// Clients in the paper are thin — "cheap, low battery, passive devices" —
// so all a client does is apply the positive/negative update stream to its
// local answer sets. Application is idempotent (set semantics): a negative
// for an absent object or a positive for a present one is a no-op, which
// is exactly what makes the recovery protocol's replayed deltas safe.
//
// Commit protocol, client side: commits originate at the client (an
// explicit commit message, or any uplink message from a moving query), so
// the client always knows its own committed answer and snapshots it
// (Commit / CommitAll). A wakeup response from the server is the
// difference between the *committed* and the current answer; updates the
// client received after its last commit are not covered by that diff, so
// on reconnect the client first rolls back to its committed snapshot
// (RollbackToCommitted) and then applies the server's recovery delta,
// which provably converges to the server's current answer.

#ifndef STQ_CORE_CLIENT_H_
#define STQ_CORE_CLIENT_H_

#include <cstddef>
#include <vector>

#include "stq/common/flat_hash.h"
#include "stq/common/ids.h"
#include "stq/core/types.h"

namespace stq {

class Client {
 public:
  explicit Client(ClientId id) : id_(id) {}

  ClientId id() const { return id_; }

  // Applies a batch of updates to the local answer sets.
  void ApplyUpdates(const std::vector<Update>& updates);

  // Replaces the local answer of `qid` wholesale (kFullAnswer recovery).
  void ApplyFullAnswer(QueryId qid, const std::vector<ObjectId>& answer);

  // Forgets a query's answer (the client cancelled it).
  void DropQuery(QueryId qid);

  // Snapshots the current answer of `qid` (resp. of every tracked query)
  // as committed. Call at each client-initiated commit point.
  void Commit(QueryId qid);
  void CommitAll();

  // Reverts every answer to its committed snapshot (empty if never
  // committed). Call on reconnect, before applying the wakeup delta.
  void RollbackToCommitted();

  // Local answer for `qid`, empty when no update ever mentioned it.
  const FlatSet<ObjectId>& AnswerOf(QueryId qid) const;

  // Sorted copy for deterministic assertions.
  std::vector<ObjectId> SortedAnswerOf(QueryId qid) const;

  size_t num_tracked_queries() const { return answers_.size(); }
  size_t updates_applied() const { return updates_applied_; }

 private:
  ClientId id_;
  FlatMap<QueryId, FlatSet<ObjectId>> answers_;
  FlatMap<QueryId, FlatSet<ObjectId>> committed_;
  size_t updates_applied_ = 0;
};

}  // namespace stq

#endif  // STQ_CORE_CLIENT_H_
