#include "stq/core/stats.h"

#include <algorithm>
#include <sstream>

#include "stq/core/query_processor.h"
#include "stq/core/sharded_server.h"

namespace stq {

std::string EngineStats::DebugString() const {
  std::ostringstream os;
  os << "objects=" << num_objects << " (predictive="
     << num_predictive_objects << ") queries=" << num_queries << " (range="
     << num_range_queries << " knn=" << num_knn_queries
     << " predictive=" << num_predictive_queries
     << " circle=" << num_circle_queries << ")"
     << " answers=" << total_answer_entries
     << " mean_answer=" << mean_answer_size
     << " max_answer=" << max_answer_size
     << " grid_object_entries=" << grid.num_object_entries
     << " grid_query_stubs=" << grid.num_query_entries << " approx_mem="
     << approx_memory_bytes / 1024 << "KiB";
  return os.str();
}

EngineStats ComputeEngineStats(const QueryProcessor& processor) {
  EngineStats stats;

  processor.ForEachObjectInfo([&](const QueryProcessor::ObjectInfo& o) {
    ++stats.num_objects;
    if (o.predictive) ++stats.num_predictive_objects;
    stats.total_qlist_entries += o.qlist_size;
  });
  processor.ForEachQueryInfo([&](const QueryProcessor::QueryInfo& q) {
    ++stats.num_queries;
    switch (q.kind) {
      case QueryKind::kRange:
        ++stats.num_range_queries;
        break;
      case QueryKind::kKnn:
        ++stats.num_knn_queries;
        break;
      case QueryKind::kPredictiveRange:
        ++stats.num_predictive_queries;
        break;
      case QueryKind::kCircleRange:
        ++stats.num_circle_queries;
        break;
    }
    stats.total_answer_entries += q.answer_size;
    stats.max_answer_size = std::max(stats.max_answer_size, q.answer_size);
  });
  stats.mean_answer_size =
      stats.num_queries == 0
          ? 0.0
          : static_cast<double>(stats.total_answer_entries) /
                static_cast<double>(stats.num_queries);
  size_t cells = 0;
  if (!processor.sharded()) {
    stats.grid = processor.grid().ComputeStats();
    cells = static_cast<size_t>(processor.grid().cells_x()) *
            static_cast<size_t>(processor.grid().cells_y());
  } else {
    // Sum the per-shard grids; in sharded mode the QLists live inside
    // the shard stores, so mirror them with the committed answer count.
    const ShardedEngine& engine = *processor.sharded_engine();
    stats.total_qlist_entries = stats.total_answer_entries;
    for (int s = 0; s < engine.num_shards(); ++s) {
      const GridStats gs = engine.shard(s).grid().ComputeStats();
      stats.grid.num_object_entries += gs.num_object_entries;
      stats.grid.num_query_entries += gs.num_query_entries;
      stats.grid.max_objects_in_cell =
          std::max(stats.grid.max_objects_in_cell, gs.max_objects_in_cell);
      stats.grid.max_queries_in_cell =
          std::max(stats.grid.max_queries_in_cell, gs.max_queries_in_cell);
      cells += static_cast<size_t>(engine.shard(s).grid().cells_x()) *
               static_cast<size_t>(engine.shard(s).grid().cells_y());
    }
  }

  // Rough per-entry footprints: object/query records, answer-set and
  // QList entries, grid id entries, and the cell array itself.
  constexpr size_t kObjectRecordBytes = sizeof(ObjectRecord) + 32;
  constexpr size_t kQueryRecordBytes = sizeof(QueryRecord) + 32;
  constexpr size_t kSetEntryBytes = 24;  // hash-set node estimate
  constexpr size_t kIdBytes = sizeof(ObjectId);
  stats.approx_memory_bytes =
      stats.num_objects * kObjectRecordBytes +
      stats.num_queries * kQueryRecordBytes +
      stats.total_answer_entries * kSetEntryBytes +
      stats.total_qlist_entries * kIdBytes +
      (stats.grid.num_object_entries + stats.grid.num_query_entries) *
          kIdBytes +
      cells * 2 * sizeof(void*) * 3;
  return stats;
}

}  // namespace stq
