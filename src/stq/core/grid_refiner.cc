#include "stq/core/grid_refiner.h"

#include "stq/common/check.h"

namespace stq {

GridRefiner::GridRefiner(const AdaptiveGridOptions& options, GridIndex* grid)
    : options_(options),
      grid_(grid),
      monitor_(grid, options.split_threshold),
      last_change_(static_cast<size_t>(grid->cells_x()) *
                       static_cast<size_t>(grid->cells_y()),
                   // Far enough in the past that the first tick is never
                   // cooldown-gated.
                   -static_cast<int64_t>(options.cooldown_ticks)) {
  STQ_CHECK(options_.Validate()) << "invalid AdaptiveGridOptions";
}

GridRefiner::StepStats GridRefiner::Tick(const ObjectStore& objects,
                                         const QueryStore& queries) {
  ++tick_;
  // Refresh the dense-cell set; its +/- delta is the monitor's own
  // product, the refiner only consumes the resulting set.
  monitor_.Tick();

  auto object_geometry = [&](ObjectId id) {
    const ObjectRecord* o = objects.Find(id);
    STQ_CHECK(o != nullptr) << "grid holds unknown object " << id;
    GridIndex::ObjectPlacement placement;
    placement.predictive = o->predictive;
    placement.loc = o->loc;
    placement.footprint = o->footprint;
    return placement;
  };
  auto query_geometry = [&](QueryId id) {
    const QueryRecord* q = queries.Find(id);
    STQ_CHECK(q != nullptr) << "grid holds unknown query " << id;
    return q->grid_footprint;
  };

  StepStats stats;
  for (int cy = 0; cy < grid_->cells_y(); ++cy) {
    for (int cx = 0; cx < grid_->cells_x(); ++cx) {
      const CellCoord c{cx, cy};
      const size_t idx = static_cast<size_t>(cy) *
                             static_cast<size_t>(grid_->cells_x()) +
                         static_cast<size_t>(cx);
      if (tick_ - last_change_[idx] < options_.cooldown_ticks) continue;
      const int level = grid_->CellLevel(c);
      // Split: the cell is dense (monitor) and its densest slot still
      // costs >= split_threshold entries per candidate scan. At level 0
      // the two conditions coincide (one slot, entries == population);
      // deeper levels keep splitting only while some leaf stays hot.
      if (level < options_.max_level && monitor_.IsDense(c) &&
          grid_->MaxLeafObjectEntries(c) >= options_.split_threshold) {
        grid_->SetCellLevel(c, level + 1, object_geometry, query_geometry);
        last_change_[idx] = tick_;
        ++stats.splits;
      } else if (level > 0 &&
                 grid_->ObjectCountInCell(c) <= options_.merge_threshold) {
        grid_->SetCellLevel(c, level - 1, object_geometry, query_geometry);
        last_change_[idx] = tick_;
        ++stats.merges;
      }
    }
  }
  return stats;
}

}  // namespace stq
