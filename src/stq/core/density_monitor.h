// DensityMonitor: continuous discovery of dense grid cells.
//
// The paper lists grid-based aggregate/dense-area queries (Hadjieleftheriou
// et al., SSTD 2003) among the query classes a shared grid supports. The
// monitor piggybacks on the engine's grid: after each evaluation period it
// diffs the set of cells whose object count reaches a threshold against
// the previously reported dense set and emits only the +/- cell updates —
// the same incremental paradigm as the object-level queries.

#ifndef STQ_CORE_DENSITY_MONITOR_H_
#define STQ_CORE_DENSITY_MONITOR_H_

#include <cstddef>
#include <set>
#include <vector>

#include "stq/core/types.h"
#include "stq/grid/grid_index.h"

namespace stq {

struct DenseCellUpdate {
  CellCoord cell;
  UpdateSign sign = UpdateSign::kPositive;
  size_t count = 0;  // object entries in the cell at evaluation time

  friend bool operator==(const DenseCellUpdate& a, const DenseCellUpdate& b) {
    return a.cell == b.cell && a.sign == b.sign && a.count == b.count;
  }
};

class DensityMonitor {
 public:
  // Cells holding >= `threshold` object entries are dense. `grid` must
  // outlive the monitor. Note: a predictive object contributes one entry
  // per cell its trajectory footprint is clipped into, so density counts
  // measure *expected presence*, not instantaneous headcount.
  DensityMonitor(const GridIndex* grid, size_t threshold);

  // Re-scans the grid and returns the delta against the previously
  // reported dense set, ordered by (y, x). Call once per evaluation
  // period, after QueryProcessor::EvaluateTick.
  std::vector<DenseCellUpdate> Tick();

  size_t threshold() const { return threshold_; }
  size_t num_dense_cells() const { return dense_.size(); }

  // Whether `c` was dense at the last Tick (the reported set, not a live
  // recount). The GridRefiner keys its split decisions off this set.
  bool IsDense(const CellCoord& c) const { return dense_.count(Key(c)) != 0; }

  // The currently reported dense cells, in (y, x) order.
  std::vector<CellCoord> DenseCells() const;

 private:
  static std::pair<int, int> Key(const CellCoord& c) { return {c.y, c.x}; }

  const GridIndex* grid_;
  size_t threshold_;
  std::set<std::pair<int, int>> dense_;
};

}  // namespace stq

#endif  // STQ_CORE_DENSITY_MONITOR_H_
