// QueryProcessor: the public API of the scalable, incremental continuous
// spatio-temporal query processing framework (the paper's contribution).
//
// Usage:
//   stq::QueryProcessorOptions opts;             // grid size, bounds, ...
//   stq::QueryProcessor qp(opts);
//   qp.UpsertObject(7, {0.3, 0.4}, /*t=*/0.0);   // sampled moving object
//   qp.RegisterRangeQuery(1, stq::Rect{0.2, 0.2, 0.5, 0.5});
//   stq::TickResult r = qp.EvaluateTick(/*now=*/5.0);
//   // r.updates == {(Q1, +p7)}
//
// Reports from objects and queries are *buffered* (UpdateBuffer) and
// evaluated in bulk at each EvaluateTick, which returns only the positive
// and negative deltas against the previously reported answers. Between
// ticks, per-id reports coalesce (last-wins).
//
// Supported query classes (all continuous, stationary or moving):
//   - rectangular range queries over present positions,
//   - k-nearest-neighbor queries of a focal point,
//   - predictive range queries over a future time window, matched against
//     linear trajectories of velocity-reporting objects.
//
// Thread-compatible; callers serialize access. Internally, EvaluateTick
// fans its read-only matching and k-NN search work out across
// options.worker_threads workers and replays the resulting deltas
// serially, so the update stream is byte-identical for every worker
// count (see DESIGN.md, "Threading model").

#ifndef STQ_CORE_QUERY_PROCESSOR_H_
#define STQ_CORE_QUERY_PROCESSOR_H_

#include <functional>
#include <memory>
#include <vector>

#include "stq/common/flat_hash.h"
#include "stq/common/result.h"
#include "stq/common/status.h"
#include "stq/common/thread_pool.h"
#include "stq/core/circle_evaluator.h"
#include "stq/core/engine_state.h"
#include "stq/core/history_store.h"
#include "stq/core/knn_evaluator.h"
#include "stq/core/options.h"
#include "stq/core/predictive_evaluator.h"
#include "stq/core/range_evaluator.h"
#include "stq/core/update_buffer.h"

namespace stq {

class GridRefiner;
class ShardedEngine;

class QueryProcessor {
 public:
  // When options.num_shards > 1 the processor becomes a facade over a
  // ShardedEngine (see sharded_server.h): the same API, the same
  // byte-identical update stream, but evaluation is partitioned across
  // per-shard grids that tick in parallel.
  explicit QueryProcessor(const QueryProcessorOptions& options = {});
  ~QueryProcessor();

  QueryProcessor(const QueryProcessor&) = delete;
  QueryProcessor& operator=(const QueryProcessor&) = delete;

  // --- Object reports (buffered until the next EvaluateTick) --------------

  // Upserts a sampled (non-predictive) object at `loc`, reported at time
  // `t`. Rejects reports older than the object's latest known report.
  // The bounded space is the universe: locations outside options().bounds
  // are clamped onto its border (a device outside the service area is
  // snapped to the fence).
  Status UpsertObject(ObjectId id, const Point& loc, Timestamp t);

  // Upserts a predictive object: at time `t` it was at `loc` moving with
  // constant velocity `vel`.
  Status UpsertPredictiveObject(ObjectId id, const Point& loc,
                                const Velocity& vel, Timestamp t);

  // Removes an object; its memberships are shipped as negative updates at
  // the next tick.
  Status RemoveObject(ObjectId id);

  // --- Query registration and movement (buffered) -------------------------

  // A new query's initial answer arrives as positive updates in the next
  // TickResult (continuous-query semantics: the answer stream starts
  // empty). Regions are clamped to options().bounds — the bounded space
  // is the universe, so the part of a region hanging outside it can never
  // match; a region entirely outside is rejected.
  Status RegisterRangeQuery(QueryId id, const Rect& region);
  Status MoveRangeQuery(QueryId id, const Rect& region);

  Status RegisterKnnQuery(QueryId id, const Point& center, int k);
  Status MoveKnnQuery(QueryId id, const Point& center);

  // Circular range query: all objects within `radius` of `center` (a
  // closed disk). The radius is fixed at registration; moves change the
  // center. The disk's bounding box must overlap the space bounds.
  Status RegisterCircleQuery(QueryId id, const Point& center, double radius);
  Status MoveCircleQuery(QueryId id, const Point& center);

  // `t_from` <= `t_to` are absolute times. The engine matches trajectories
  // only up to options().prediction_horizon seconds past each object's
  // last report.
  Status RegisterPredictiveQuery(QueryId id, const Rect& region,
                                 double t_from, double t_to);
  Status MovePredictiveQuery(QueryId id, const Rect& region);

  // Drops the query silently (no negative updates; the client abandoned
  // the answer).
  Status UnregisterQuery(QueryId id);

  // --- Evaluation ----------------------------------------------------------

  // Applies all buffered reports and returns the incremental update
  // stream, canonically ordered. `now` should be non-decreasing across
  // calls.
  TickResult EvaluateTick(Timestamp now);

  // As EvaluateTick, but writes into `result`, whose buffers are cleared
  // (capacity kept) and refilled. The sharded engine ticks every shard
  // through this entry point so the per-shard update vectors stop
  // allocating at steady state.
  void EvaluateTickInto(Timestamp now, TickResult* result);

  // --- Introspection --------------------------------------------------------

  const QueryProcessorOptions& options() const { return options_; }
  // True when this processor delegates to the sharded engine
  // (options().num_shards > 1).
  bool sharded() const { return sharded_ != nullptr; }
  // The underlying sharded engine, or nullptr in single-grid mode.
  const ShardedEngine* sharded_engine() const { return sharded_.get(); }
  // Resolved worker count for the parallel tick phases (>= 1; equals
  // options().worker_threads unless that was 0 = auto).
  int worker_threads() const;
  size_t num_objects() const;
  size_t num_queries() const;
  size_t pending_reports() const;
  bool HasQuery(QueryId id) const;

  // Direct structure access — single-grid mode only (a sharded processor
  // has one grid and one store pair *per shard*; reach them through
  // sharded_engine()->shard(s)). STQ_CHECK-fails when sharded().
  const ObjectStore& object_store() const;
  const QueryStore& query_store() const;
  const GridIndex& grid() const;

  // Engine-independent views over the stored objects and queries, valid
  // in both modes (iteration order is unspecified; sort by id for
  // deterministic output). `answer_size` is the committed answer's
  // cardinality; `qlist_size` is the object's QList length (0 in sharded
  // mode, where QLists live inside the per-shard stores).
  struct ObjectInfo {
    ObjectId id = 0;
    Point loc;
    Velocity vel;
    Timestamp t = 0.0;
    bool predictive = false;
    size_t qlist_size = 0;
  };
  struct QueryInfo {
    QueryId id = 0;
    QueryKind kind = QueryKind::kRange;
    Rect region;
    Circle circle;
    int k = 0;
    double t_from = 0.0;
    double t_to = 0.0;
    size_t answer_size = 0;
  };
  // Cold introspection walks (persistence capture, invariant audits).
  // Type erasure keeps the processor internals out of callers' headers,
  // and the wrap cost is paid once per walk, never per element.
  // stq-lint: allow(alloc-discipline/function): cold introspection walk
  void ForEachObjectInfo(const std::function<void(const ObjectInfo&)>& fn) const;
  // stq-lint: allow(alloc-discipline/function): cold introspection walk
  void ForEachQueryInfo(const std::function<void(const QueryInfo&)>& fn) const;

  // The answer currently reported for `id` (sorted by object id).
  Result<std::vector<ObjectId>> CurrentAnswer(QueryId id) const;

  // The committed answer as a set; false when the query is unknown.
  bool GetAnswerSet(QueryId id, AnswerSet* out) const;

  // Summed bytes_resident of every live per-query answer set (see
  // core/answer_set.h). Valid in both engine modes; also published as
  // TickStats::bytes_resident at the end of every tick.
  size_t AnswerBytesResident() const;

  // Appends the committed answer ids to `out` (unsorted, not cleared;
  // no allocation beyond `out` growth); false when the query is unknown.
  // Single-grid only — the sharded router captures departing shard
  // answers through this without a per-query temporary vector.
  bool AppendAnswerIds(QueryId id, std::vector<ObjectId>* out) const;

  // Exact k nearest neighbours of `center` over the current object
  // population, sorted by (distance^2, id). Empty when k < 1.
  std::vector<KnnEvaluator::Neighbor> SearchKnn(const Point& center,
                                                int k) const;

  // Recomputes the answer of `id` from first principles, bypassing all
  // incremental state (linear scan / brute-force k-NN). Ground truth for
  // tests and baselines.
  Result<std::vector<ObjectId>> EvaluateFromScratch(QueryId id) const;

  // Verifies every engine invariant by running a full InvariantAuditor
  // pass (answer/QList symmetry, grid/store agreement, every stored
  // answer equals its from-scratch recomputation). Intended for tests;
  // call only when no reports are pending. O(objects x queries).
  Status CheckInvariants() const;

  // --- Test support ---------------------------------------------------------
  // Mutable access to the engine's internal structures, for
  // corruption-injection tests that verify the InvariantAuditor catches
  // seeded divergences. Never used by the engine itself. The store/grid
  // accessors are single-grid only (STQ_CHECK-fail when sharded());
  // sharded tests corrupt a shard via sharded_engine_for_testing().
  ObjectStore& object_store_for_testing();
  QueryStore& query_store_for_testing();
  GridIndex& grid_for_testing();
  ShardedEngine* sharded_engine_for_testing() { return sharded_.get(); }

  // --- Querying the past (requires options().record_history) ---------------

  // The retained report history, or nullptr when history recording is
  // off.
  const HistoryStore* history() const;

  // Snapshot range query as of past instant `t` (sample-and-hold over the
  // recorded reports). Only reports already applied by a tick are
  // visible. FailedPrecondition when history recording is off.
  Result<std::vector<ObjectId>> EvaluatePastRangeQuery(const Rect& region,
                                                       Timestamp t) const;

 private:
  EngineState state();

  // Tick phases. Each appends to `out` and updates `stats`.
  void ApplyObjectRemovals(const std::vector<ObjectId>& removals,
                           Timestamp now, std::vector<Update>* out,
                           TickStats* stats);
  void ApplyObjectUpserts(const std::vector<PendingObjectUpsert>& upserts,
                          std::vector<ObjectId>* moved, TickStats* stats);
  // Fully removes a query record: scrubs member QLists, drops grid stubs,
  // erases the record.
  void DropQueryRecord(QueryId id, TickStats* stats);
  void ApplyQueryChanges(const std::vector<PendingQueryChange>& changes,
                         Timestamp now,
                         std::vector<std::pair<QueryId, Rect>>* changed_rects,
                         std::vector<QueryId>* moved_circles,
                         TickStats* stats);
  void RunQueryPass(const std::vector<std::pair<QueryId, Rect>>& changed,
                    const std::vector<QueryId>& moved_circles,
                    std::vector<Update>* out);
  void RunObjectPass(const std::vector<ObjectId>& moved,
                     std::vector<Update>* out, TickStats* stats);

  // The object pass, split for shared-nothing parallelism:
  //
  //   match  (parallel)  each shard scans its slice of `moved` against
  //                      the grid and the stores — strictly read-only —
  //                      and records membership deltas and k-NN dirty
  //                      marks in its own MatchOutput;
  //   apply  (serial)    the deltas replay through SetMembership in
  //                      shard order, which is exactly the order the
  //                      serial pass would have produced.
  //
  // A delta's sign is decided purely by geometry (Satisfies) against the
  // pre-pass state, so the replay is idempotent per (query, object) and
  // the resulting update stream is byte-identical for any worker count.
  struct MatchDelta {
    QueryId qid = 0;
    ObjectId oid = 0;
    bool add = false;
  };
  // One sampled mover's positive-side probe in the batch object pass:
  // its grid slot key plus the gathered state, so the slot-grouped kernel
  // loop never re-touches the object store.
  struct SlotProbe {
    uint64_t slot = 0;
    ObjectId oid = 0;
    double x = 0.0;
    double y = 0.0;
    double t = 0.0;
  };
  struct MatchOutput {
    std::vector<MatchDelta> deltas;
    std::vector<QueryId> knn_dirty;
    // Per-shard candidate scratch for CollectQueriesInRect; lives here so
    // its capacity survives across ticks with the rest of the output.
    std::vector<QueryId> candidates;
    // Batch-mode scratch: per-slot probe list and the SoA kernel batch.
    std::vector<SlotProbe> probes;
    CandidateBatch batch;

    void clear() {
      deltas.clear();
      knn_dirty.clear();
      candidates.clear();
      probes.clear();
      batch.clear();
    }
  };
  void MatchObjectShard(const std::vector<ObjectId>& moved, size_t begin,
                        size_t end, MatchOutput* out) const;
  // The batch positive side of MatchObjectShard: sorts the shard's probes
  // by (slot, id) and runs one predicate kernel per (slot, candidate
  // query) pair over the slot's SoA batch.
  void MatchProbeBatches(MatchOutput* out) const;
  void ApplyMatchDeltas(std::vector<MatchOutput>& outputs,
                        std::vector<Update>* out);

  // Tick-scoped scratch buffers, owned by the processor and reused across
  // EvaluateTick calls so a steady-state tick performs no per-element
  // allocation (capacities converge to the workload's high-water mark;
  // see DESIGN.md, "Memory layout & allocation discipline"). Cleared at
  // the start of each use — no state carries across ticks.
  struct TickScratch {
    std::vector<PendingObjectUpsert> upserts;
    std::vector<ObjectId> removals;
    std::vector<PendingQueryChange> query_changes;
    std::vector<ObjectId> moved;
    std::vector<std::pair<QueryId, Rect>> changed_rects;
    std::vector<QueryId> moved_circles;
    // One MatchOutput per matching shard; each keeps its delta capacity.
    std::vector<MatchOutput> match_outputs;
  };

  // Highest report timestamp known (stored or pending) for the object, or
  // -infinity when unknown.
  double LatestKnownReportTime(ObjectId id) const;

  // Query regions are clamped to the space bounds (see RegisterRangeQuery).
  Rect ClampRegion(const Rect& region) const;
  // Object locations are clamped into the space (see UpsertObject).
  Point ClampLocation(const Point& loc) const;

  Status ValidateQueryRegistration(QueryId id) const;
  // Returns the kind the query will have once the buffer drains, or an
  // error when the query does not (and will not) exist.
  Result<QueryKind> EffectiveQueryKind(QueryId id) const;

  QueryProcessorOptions options_;
  std::unique_ptr<HistoryStore> history_;  // null unless record_history
  // Fork/join pool for the matching and k-NN search phases; null when
  // the resolved worker count is 1 (fully serial tick).
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<GridIndex> grid_;
  ObjectStore objects_;
  QueryStore queries_;
  UpdateBuffer buffer_;
  RangeEvaluator range_;
  KnnEvaluator knn_;
  PredictiveEvaluator predictive_;
  CircleEvaluator circle_;
  TickScratch scratch_;
  // Non-null iff options.adaptive.enabled in single-grid mode: splits
  // hot cells / merges cold ones on committed state at the end of each
  // tick (stream-invisible; see core/grid_refiner.h).
  std::unique_ptr<GridRefiner> refiner_;
  Timestamp last_tick_time_ = 0.0;
  // Non-null iff options.num_shards > 1; every public entry point then
  // delegates here and the single-grid members above stay empty.
  std::unique_ptr<ShardedEngine> sharded_;
};

}  // namespace stq

#endif  // STQ_CORE_QUERY_PROCESSOR_H_
