// Incremental maintenance of continuous k-nearest-neighbor queries.
//
// "k-nearest-neighbor queries are stored in the grid structure by
// considering the query region as the smallest circular region that
// contains the k nearest objects." (paper, Section 3.1)
//
// A k-NN query becomes *dirty* when its focal point moves, when an answer
// member moves or disappears, or when some object moves inside the answer
// circle. Only dirty queries are re-evaluated; the re-evaluation performs
// an expanding-ring search over the grid and the answer delta is shipped
// as +/- updates (paper, Example II).

#ifndef STQ_CORE_KNN_EVALUATOR_H_
#define STQ_CORE_KNN_EVALUATOR_H_

#include <cstdint>
#include <vector>

#include "stq/common/flat_hash.h"
#include "stq/common/thread_pool.h"
#include "stq/core/engine_state.h"

namespace stq {

class KnnEvaluator {
 public:
  explicit KnnEvaluator(EngineState state) : state_(state) {}

  // Schedules `qid` for re-evaluation at the end of the current tick.
  void MarkDirty(QueryId qid) { dirty_.insert(qid); }
  void ClearDirty() { dirty_.clear(); }
  size_t num_dirty() const { return dirty_.size(); }

  // Exact k-NN search over the grid: the k objects nearest to `center`,
  // ties broken by object id, returned sorted by (distance^2, id).
  // Exposed for tests and for the processor's from-scratch evaluation.
  struct Neighbor {
    double dist2 = 0.0;
    ObjectId id = 0;

    friend bool operator<(const Neighbor& a, const Neighbor& b) {
      if (a.dist2 != b.dist2) return a.dist2 < b.dist2;
      return a.id < b.id;
    }
  };
  std::vector<Neighbor> Search(const Point& center, int k) const;

  // Re-evaluates every dirty query that still exists: recomputes the k
  // nearest objects, emits the answer delta, updates the circle and
  // re-clips the query's grid footprint. Returns the number of queries
  // re-evaluated. Equivalent to ApplyDirty(SearchDirty(pool), out); the
  // update stream is byte-identical for every worker count.
  size_t ReevaluateDirty(std::vector<Update>* out,
                         ThreadPool* pool = nullptr);

  // The two halves of ReevaluateDirty, split so the processor can time
  // (and parallelize) them independently.
  //
  // SearchDirty consumes the dirty set and runs one grid search per
  // still-live k-NN query, in ascending query id. Searches only READ the
  // grid and the stores, so they run concurrently when `pool` has more
  // than one worker; the returned order is worker-count-invariant.
  struct DirtyAnswer {
    QueryId qid = 0;
    std::vector<Neighbor> neighbors;
  };
  std::vector<DirtyAnswer> SearchDirty(ThreadPool* pool = nullptr);

  // ApplyDirty replays the freshly computed answers serially, in the
  // order SearchDirty returned them: emits delta updates, refreshes each
  // answer circle, re-clips grid footprints. ApplyAnswer mutates nothing
  // a concurrent Search reads, which is what makes the split sound.
  size_t ApplyDirty(const std::vector<DirtyAnswer>& answers,
                    std::vector<Update>* out);

 private:
  // Applies a freshly computed answer to `q`: emits delta updates,
  // updates the circle radius, re-clips the grid footprint.
  void ApplyAnswer(QueryRecord* q, const std::vector<Neighbor>& neighbors,
                   std::vector<Update>* out);

  EngineState state_;
  FlatSet<QueryId> dirty_;

  // Tick-scoped scratch, reused across ReevaluateDirty calls so the
  // steady state stops allocating (see DESIGN.md, "Memory layout &
  // allocation discipline").
  std::vector<QueryId> dirty_ids_scratch_;
  FlatSet<ObjectId> fresh_scratch_;
  std::vector<ObjectId> leavers_scratch_;
};

}  // namespace stq

#endif  // STQ_CORE_KNN_EVALUATOR_H_
