#include "stq/core/history_store.h"

#include <algorithm>

namespace stq {

void HistoryStore::RecordReport(ObjectId id, const Point& loc, Timestamp t) {
  std::vector<Sample>& timeline = timelines_[id];
  if (!timeline.empty()) {
    // An id reused after a removal may carry an older device clock; the
    // history keeps its own order by clamping such reports forward.
    if (t < timeline.back().t) t = timeline.back().t;
    if (timeline.back().t == t) {
      timeline.back() = Sample{t, loc, false};
      return;
    }
  }
  timeline.push_back(Sample{t, loc, false});
}

void HistoryStore::RecordRemoval(ObjectId id, Timestamp t) {
  std::vector<Sample>& timeline = timelines_[id];
  if (!timeline.empty()) {
    if (t < timeline.back().t) t = timeline.back().t;
    if (timeline.back().t == t) {
      timeline.back().removed = true;
      return;
    }
  }
  timeline.push_back(Sample{t, Point{}, true});
}

std::optional<Point> HistoryStore::LocationAt(ObjectId id, Timestamp t,
                                              Interpolation mode) const {
  auto it = timelines_.find(id);
  if (it == timelines_.end()) return std::nullopt;
  const std::vector<Sample>& timeline = it->second;
  // First sample with sample.t > t; its predecessor is the holder.
  auto next = std::upper_bound(
      timeline.begin(), timeline.end(), t,
      [](Timestamp value, const Sample& s) { return value < s.t; });
  if (next == timeline.begin()) return std::nullopt;  // not yet reported
  const Sample& sample = *(next - 1);
  if (sample.removed) return std::nullopt;
  if (mode == Interpolation::kLinear && next != timeline.end() &&
      !next->removed && next->t > sample.t) {
    const double f = (t - sample.t) / (next->t - sample.t);
    return Point{sample.loc.x + (next->loc.x - sample.loc.x) * f,
                 sample.loc.y + (next->loc.y - sample.loc.y) * f};
  }
  return sample.loc;
}

std::vector<ObjectId> HistoryStore::RangeAt(const Rect& region, Timestamp t,
                                            Interpolation mode) const {
  std::vector<ObjectId> out;
  for (const auto& [id, timeline] : timelines_) {
    (void)timeline;
    const std::optional<Point> loc = LocationAt(id, t, mode);
    if (loc.has_value() && region.Contains(*loc)) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void HistoryStore::PruneBefore(Timestamp horizon) {
  // FlatMap::erase backward-shifts and would invalidate a live iterator,
  // so dead timelines are collected first and erased after the sweep.
  std::vector<ObjectId> dead;
  for (auto& [id, timeline] : timelines_) {
    // Keep the latest sample at or before the horizon (sample-and-hold
    // needs it) plus everything after.
    auto keep_from = std::upper_bound(
        timeline.begin(), timeline.end(), horizon,
        [](Timestamp value, const Sample& s) { return value < s.t; });
    if (keep_from != timeline.begin()) --keep_from;
    timeline.erase(timeline.begin(), keep_from);
    // A timeline reduced to a single tombstone is dead weight.
    if (timeline.size() == 1 && timeline[0].removed &&
        timeline[0].t <= horizon) {
      dead.push_back(id);
    }
  }
  for (ObjectId id : dead) timelines_.erase(id);
}

size_t HistoryStore::num_samples() const {
  size_t total = 0;
  for (const auto& [id, timeline] : timelines_) total += timeline.size();
  return total;
}

}  // namespace stq
