// Axis-aligned rectangle with closed bounds [min_x, max_x] x [min_y, max_y].
//
// Rectangles are the region type of range queries and of grid cells. An
// "empty" rectangle (max < min on either axis) contains nothing and
// intersects nothing.

#ifndef STQ_GEO_RECT_H_
#define STQ_GEO_RECT_H_

#include <algorithm>
#include <string>
#include <vector>

#include "stq/geo/point.h"

namespace stq {

struct Rect {
  double min_x = 0.0;
  double min_y = 0.0;
  double max_x = -1.0;  // default-constructed Rect is empty
  double max_y = -1.0;

  static Rect Empty() { return Rect{}; }

  // Rectangle from corner + extents. `w`/`h` must be >= 0.
  static Rect FromCorner(double x, double y, double w, double h) {
    return Rect{x, y, x + w, y + h};
  }

  // Axis-aligned square of side `side` centered at `c`.
  static Rect CenteredSquare(const Point& c, double side) {
    const double h = side / 2.0;
    return Rect{c.x - h, c.y - h, c.x + h, c.y + h};
  }

  // Smallest rectangle covering both corner points.
  static Rect FromCorners(const Point& a, const Point& b) {
    return Rect{std::min(a.x, b.x), std::min(a.y, b.y), std::max(a.x, b.x),
                std::max(a.y, b.y)};
  }

  bool IsEmpty() const { return max_x < min_x || max_y < min_y; }

  double Width() const { return IsEmpty() ? 0.0 : max_x - min_x; }
  double Height() const { return IsEmpty() ? 0.0 : max_y - min_y; }
  double Area() const { return Width() * Height(); }
  Point Center() const {
    return Point{(min_x + max_x) / 2.0, (min_y + max_y) / 2.0};
  }

  bool Contains(const Point& p) const {
    return !IsEmpty() && p.x >= min_x && p.x <= max_x && p.y >= min_y &&
           p.y <= max_y;
  }

  // True when `other` lies fully inside this rectangle.
  bool ContainsRect(const Rect& other) const;

  bool Intersects(const Rect& other) const {
    if (IsEmpty() || other.IsEmpty()) return false;
    return min_x <= other.max_x && other.min_x <= max_x &&
           min_y <= other.max_y && other.min_y <= max_y;
  }

  // Intersection; empty if disjoint.
  Rect Intersection(const Rect& other) const;

  // Smallest rectangle covering both; if one is empty, returns the other.
  Rect Union(const Rect& other) const;

  // Expands every side by `margin` (>= 0).
  Rect Expanded(double margin) const {
    if (IsEmpty()) return *this;
    return Rect{min_x - margin, min_y - margin, max_x + margin,
                max_y + margin};
  }

  // Minimum Euclidean distance from `p` to this rectangle (0 if inside).
  double DistanceTo(const Point& p) const;

  std::string DebugString() const;

  friend bool operator==(const Rect& a, const Rect& b) {
    if (a.IsEmpty() && b.IsEmpty()) return true;
    return a.min_x == b.min_x && a.min_y == b.min_y && a.max_x == b.max_x &&
           a.max_y == b.max_y;
  }
};

// Decomposes the set difference `a - b` into at most four disjoint
// rectangles. The union of the returned rectangles (closed regions) covers
// exactly the points of `a` outside the open interior of `b`; this is the
// primitive behind the paper's incremental evaluation of a moving range
// query, where only `A_new - A_old` is re-evaluated against the grid and
// `A_old - A_new` produces negative updates.
std::vector<Rect> RectDifference(const Rect& a, const Rect& b);

// Allocation-free form for hot paths: clears `*out` and appends the
// difference pieces, reusing the vector's capacity across calls.
void RectDifference(const Rect& a, const Rect& b, std::vector<Rect>* out);

}  // namespace stq

#endif  // STQ_GEO_RECT_H_
