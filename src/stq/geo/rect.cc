#include "stq/geo/rect.h"

#include <limits>
#include <sstream>

namespace stq {

bool Rect::ContainsRect(const Rect& other) const {
  if (other.IsEmpty()) return true;
  if (IsEmpty()) return false;
  return other.min_x >= min_x && other.max_x <= max_x &&
         other.min_y >= min_y && other.max_y <= max_y;
}

Rect Rect::Intersection(const Rect& other) const {
  if (!Intersects(other)) return Rect::Empty();
  return Rect{std::max(min_x, other.min_x), std::max(min_y, other.min_y),
              std::min(max_x, other.max_x), std::min(max_y, other.max_y)};
}

Rect Rect::Union(const Rect& other) const {
  if (IsEmpty()) return other;
  if (other.IsEmpty()) return *this;
  return Rect{std::min(min_x, other.min_x), std::min(min_y, other.min_y),
              std::max(max_x, other.max_x), std::max(max_y, other.max_y)};
}

double Rect::DistanceTo(const Point& p) const {
  if (IsEmpty()) return std::numeric_limits<double>::infinity();
  const double dx = std::max({min_x - p.x, 0.0, p.x - max_x});
  const double dy = std::max({min_y - p.y, 0.0, p.y - max_y});
  return std::sqrt(dx * dx + dy * dy);
}

std::string Rect::DebugString() const {
  std::ostringstream os;
  if (IsEmpty()) {
    os << "Rect(empty)";
  } else {
    os << "Rect[" << min_x << "," << min_y << " .. " << max_x << "," << max_y
       << "]";
  }
  return os.str();
}

std::vector<Rect> RectDifference(const Rect& a, const Rect& b) {
  std::vector<Rect> out;
  RectDifference(a, b, &out);
  return out;
}

void RectDifference(const Rect& a, const Rect& b, std::vector<Rect>* out) {
  out->clear();
  if (a.IsEmpty()) return;
  const Rect inter = a.Intersection(b);
  if (inter.IsEmpty()) {
    out->push_back(a);
    return;
  }
  if (inter == a) return;  // a fully covered by b

  // Split `a` into up to four bands around the intersection: bottom and
  // top spanning a's full width, left and right limited to the
  // intersection's vertical band. The bands are disjoint (they share only
  // boundary lines).
  if (inter.min_y > a.min_y) {
    out->push_back(Rect{a.min_x, a.min_y, a.max_x, inter.min_y});
  }
  if (inter.max_y < a.max_y) {
    out->push_back(Rect{a.min_x, inter.max_y, a.max_x, a.max_y});
  }
  if (inter.min_x > a.min_x) {
    out->push_back(Rect{a.min_x, inter.min_y, inter.min_x, inter.max_y});
  }
  if (inter.max_x < a.max_x) {
    out->push_back(Rect{inter.max_x, inter.min_y, a.max_x, inter.max_y});
  }
}

}  // namespace stq
