// Directed line segment, the spatial footprint of a predictive object's
// trajectory over a time window.

#ifndef STQ_GEO_SEGMENT_H_
#define STQ_GEO_SEGMENT_H_

#include "stq/geo/point.h"
#include "stq/geo/rect.h"

namespace stq {

struct Segment {
  Point a;
  Point b;

  Rect BoundingBox() const { return Rect::FromCorners(a, b); }

  // Point at parameter t in [0, 1] along the segment.
  Point At(double t) const {
    return Point{a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t};
  }

  double Length() const { return Distance(a, b); }
};

// Liang-Barsky clipping of `seg` against `rect`. Returns true when any part
// of the segment lies inside the rectangle; on success `*t_enter` and
// `*t_exit` (both in [0, 1], t_enter <= t_exit) bound the inside portion.
// Either output pointer may be null.
bool ClipSegmentToRect(const Segment& seg, const Rect& rect, double* t_enter,
                       double* t_exit);

// Convenience: does any part of `seg` intersect `rect`?
inline bool SegmentIntersectsRect(const Segment& seg, const Rect& rect) {
  return ClipSegmentToRect(seg, rect, nullptr, nullptr);
}

}  // namespace stq

#endif  // STQ_GEO_SEGMENT_H_
