// Spatio-temporal predicates combining the linear motion model with the
// region types. These are the leaf predicates evaluated by the predictive
// query evaluator.

#ifndef STQ_GEO_GEOMETRY_H_
#define STQ_GEO_GEOMETRY_H_

#include "stq/geo/circle.h"
#include "stq/geo/point.h"
#include "stq/geo/rect.h"
#include "stq/geo/segment.h"

namespace stq {

// Linear trajectory: position `origin + vel * (t - t0)` for t >= t0.
struct Trajectory {
  Point origin;
  Velocity vel;
  double t0 = 0.0;  // timestamp at which the object was at `origin`

  Point PositionAt(double t) const { return Advance(origin, vel, t - t0); }

  // Spatial footprint between `t_from` and `t_to` (clamped to t >= t0).
  Segment FootprintBetween(double t_from, double t_to) const;
};

// Does the trajectory pass through `region` at any instant of the closed
// window [t_from, t_to]? Instants before the trajectory's own start time
// t0 are excluded (the object's past is unknown). When true and
// `t_hit` != nullptr, *t_hit receives the earliest hit time.
bool TrajectoryIntersectsRect(const Trajectory& traj, const Rect& region,
                              double t_from, double t_to, double* t_hit);

// Minimum distance from point `p` to segment `s`.
double PointSegmentDistance(const Point& p, const Segment& s);

}  // namespace stq

#endif  // STQ_GEO_GEOMETRY_H_
