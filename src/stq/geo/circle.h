// Circle region. k-NN queries are represented in the grid as "the smallest
// circular region that contains the k nearest objects" (paper, Section 3.1);
// the circle's center is the query point and its radius the distance to the
// k-th nearest neighbor.

#ifndef STQ_GEO_CIRCLE_H_
#define STQ_GEO_CIRCLE_H_

#include "stq/geo/point.h"
#include "stq/geo/rect.h"

namespace stq {

struct Circle {
  Point center;
  double radius = 0.0;

  bool Contains(const Point& p) const {
    return SquaredDistance(center, p) <= radius * radius;
  }

  // Axis-aligned bounding box; used to clip the circle to grid cells.
  Rect BoundingBox() const {
    return Rect{center.x - radius, center.y - radius, center.x + radius,
                center.y + radius};
  }

  friend bool operator==(const Circle& a, const Circle& b) {
    return a.center == b.center && a.radius == b.radius;
  }
};

}  // namespace stq

#endif  // STQ_GEO_CIRCLE_H_
