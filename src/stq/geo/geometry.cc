#include "stq/geo/geometry.h"

#include <algorithm>

namespace stq {

Segment Trajectory::FootprintBetween(double t_from, double t_to) const {
  const double start = std::max(t_from, t0);
  const double end = std::max(t_to, start);
  return Segment{PositionAt(start), PositionAt(end)};
}

bool TrajectoryIntersectsRect(const Trajectory& traj, const Rect& region,
                              double t_from, double t_to, double* t_hit) {
  if (region.IsEmpty() || t_to < t_from) return false;
  const double start = std::max(t_from, traj.t0);
  if (t_to < start) return false;

  if (traj.vel.IsZero()) {
    if (region.Contains(traj.origin)) {
      if (t_hit != nullptr) *t_hit = start;
      return true;
    }
    return false;
  }

  const Segment footprint{traj.PositionAt(start), traj.PositionAt(t_to)};
  double t_enter = 0.0;
  if (!ClipSegmentToRect(footprint, region, &t_enter, nullptr)) return false;
  if (t_hit != nullptr) *t_hit = start + t_enter * (t_to - start);
  return true;
}

double PointSegmentDistance(const Point& p, const Segment& s) {
  const double dx = s.b.x - s.a.x;
  const double dy = s.b.y - s.a.y;
  const double len2 = dx * dx + dy * dy;
  if (len2 == 0.0) return Distance(p, s.a);
  double t = ((p.x - s.a.x) * dx + (p.y - s.a.y) * dy) / len2;
  t = std::clamp(t, 0.0, 1.0);
  return Distance(p, s.At(t));
}

}  // namespace stq
