#include "stq/geo/segment.h"

namespace stq {

namespace {
// One Liang-Barsky clip test against a single boundary: p is the dot
// product of the direction with the inward normal (negated), q the signed
// distance to the boundary. Shrinks [t0, t1]; returns false when the
// segment is fully outside.
bool ClipEdge(double p, double q, double* t0, double* t1) {
  if (p == 0.0) return q >= 0.0;  // parallel: inside iff on the inner side
  const double r = q / p;
  if (p < 0.0) {
    if (r > *t1) return false;
    if (r > *t0) *t0 = r;
  } else {
    if (r < *t0) return false;
    if (r < *t1) *t1 = r;
  }
  return true;
}
}  // namespace

bool ClipSegmentToRect(const Segment& seg, const Rect& rect, double* t_enter,
                       double* t_exit) {
  if (rect.IsEmpty()) return false;
  const double dx = seg.b.x - seg.a.x;
  const double dy = seg.b.y - seg.a.y;
  double t0 = 0.0;
  double t1 = 1.0;
  if (!ClipEdge(-dx, seg.a.x - rect.min_x, &t0, &t1)) return false;
  if (!ClipEdge(dx, rect.max_x - seg.a.x, &t0, &t1)) return false;
  if (!ClipEdge(-dy, seg.a.y - rect.min_y, &t0, &t1)) return false;
  if (!ClipEdge(dy, rect.max_y - seg.a.y, &t0, &t1)) return false;
  if (t0 > t1) return false;
  if (t_enter != nullptr) *t_enter = t0;
  if (t_exit != nullptr) *t_exit = t1;
  return true;
}

}  // namespace stq
