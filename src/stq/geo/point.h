// 2-D point and velocity value types.
//
// The framework operates in a bounded 2-D space (by convention the unit
// square, see QueryProcessorOptions::bounds). Coordinates are doubles.

#ifndef STQ_GEO_POINT_H_
#define STQ_GEO_POINT_H_

#include <cmath>

namespace stq {

struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
};

// Velocity in space-units per second. A zero velocity denotes a
// non-predictive (sampled) object.
struct Velocity {
  double vx = 0.0;
  double vy = 0.0;

  bool IsZero() const { return vx == 0.0 && vy == 0.0; }

  friend bool operator==(const Velocity& a, const Velocity& b) {
    return a.vx == b.vx && a.vy == b.vy;
  }
};

inline double SquaredDistance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

inline double Distance(const Point& a, const Point& b) {
  return std::sqrt(SquaredDistance(a, b));
}

// Linear motion model: position after `dt` seconds at velocity `v`.
inline Point Advance(const Point& p, const Velocity& v, double dt) {
  return Point{p.x + v.vx * dt, p.y + v.vy * dt};
}

}  // namespace stq

#endif  // STQ_GEO_POINT_H_
