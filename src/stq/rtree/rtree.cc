#include "stq/rtree/rtree.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "stq/common/check.h"

namespace stq {

namespace {
// Enlargement of `mbr`'s area needed to cover `rect`.
double Enlargement(const Rect& mbr, const Rect& rect) {
  return mbr.Union(rect).Area() - mbr.Area();
}
}  // namespace

RTree::RTree() : RTree(Options()) {}

RTree::RTree(const Options& options) : options_(options) {
  STQ_CHECK(options_.max_entries >= 4) << "max_entries must be >= 4";
  root_ = std::make_unique<Node>();
}

RTree::~RTree() = default;

int RTree::min_entries() const { return std::max(2, options_.max_entries / 2); }

Rect RTree::Node::ComputeMbr() const {
  Rect mbr = Rect::Empty();
  for (const Entry& e : entries) mbr = mbr.Union(e.rect);
  return mbr;
}

// ---------------------------------------------------------------------------
// Insertion
// ---------------------------------------------------------------------------

RTree::Node* RTree::ChooseLeaf(const Rect& rect,
                               std::vector<Node*>* path) const {
  Node* node = root_.get();
  path->push_back(node);
  while (!node->leaf) {
    // Guttman's ChooseLeaf: least enlargement, ties by smallest area.
    Entry* best = nullptr;
    double best_enlargement = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (Entry& e : const_cast<Node*>(node)->entries) {
      const double enlargement = Enlargement(e.rect, rect);
      const double area = e.rect.Area();
      if (enlargement < best_enlargement ||
          (enlargement == best_enlargement && area < best_area)) {
        best = &e;
        best_enlargement = enlargement;
        best_area = area;
      }
    }
    STQ_DCHECK(best != nullptr);
    node = best->child.get();
    path->push_back(node);
  }
  return node;
}

std::unique_ptr<RTree::Node> RTree::SplitNode(Node* node) {
  // Quadratic split (Guttman): pick the pair of entries that would waste
  // the most area together as seeds, then distribute greedily by
  // enlargement preference.
  std::vector<Entry> pool = std::move(node->entries);
  node->entries.clear();

  size_t seed_a = 0, seed_b = 1;
  double worst_waste = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < pool.size(); ++i) {
    for (size_t j = i + 1; j < pool.size(); ++j) {
      const double waste = pool[i].rect.Union(pool[j].rect).Area() -
                           pool[i].rect.Area() - pool[j].rect.Area();
      if (waste > worst_waste) {
        worst_waste = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  auto sibling = std::make_unique<Node>();
  sibling->leaf = node->leaf;

  Rect mbr_a = pool[seed_a].rect;
  Rect mbr_b = pool[seed_b].rect;
  node->entries.push_back(std::move(pool[seed_a]));
  sibling->entries.push_back(std::move(pool[seed_b]));

  std::vector<Entry> rest;
  for (size_t i = 0; i < pool.size(); ++i) {
    if (i != seed_a && i != seed_b) rest.push_back(std::move(pool[i]));
  }

  const size_t min_fill = static_cast<size_t>(min_entries());
  for (size_t next = 0; next < rest.size(); ++next) {
    Entry& e = rest[next];
    const size_t remaining = rest.size() - next;
    // Force assignment when a group must take all remaining entries to
    // reach the minimum fill.
    if (node->entries.size() + remaining <= min_fill) {
      mbr_a = mbr_a.Union(e.rect);
      node->entries.push_back(std::move(e));
      continue;
    }
    if (sibling->entries.size() + remaining <= min_fill) {
      mbr_b = mbr_b.Union(e.rect);
      sibling->entries.push_back(std::move(e));
      continue;
    }
    const double grow_a = Enlargement(mbr_a, e.rect);
    const double grow_b = Enlargement(mbr_b, e.rect);
    const bool to_a =
        grow_a < grow_b ||
        (grow_a == grow_b && (mbr_a.Area() < mbr_b.Area() ||
                              (mbr_a.Area() == mbr_b.Area() &&
                               node->entries.size() <=
                                   sibling->entries.size())));
    if (to_a) {
      mbr_a = mbr_a.Union(e.rect);
      node->entries.push_back(std::move(e));
    } else {
      mbr_b = mbr_b.Union(e.rect);
      sibling->entries.push_back(std::move(e));
    }
  }
  return sibling;
}

void RTree::GrowRoot(std::unique_ptr<Node> sibling) {
  auto new_root = std::make_unique<Node>();
  new_root->leaf = false;
  Entry left;
  left.rect = root_->ComputeMbr();
  left.child = std::move(root_);
  Entry right;
  right.rect = sibling->ComputeMbr();
  right.child = std::move(sibling);
  new_root->entries.push_back(std::move(left));
  new_root->entries.push_back(std::move(right));
  root_ = std::move(new_root);
}

void RTree::AdjustTree(std::vector<Node*>& path, std::unique_ptr<Node> split) {
  // Walk from the leaf back to the root, refreshing MBRs and propagating
  // splits upward.
  for (size_t level = path.size(); level-- > 0;) {
    Node* node = path[level];
    if (level == 0) {
      if (split != nullptr) GrowRoot(std::move(split));
      return;
    }
    Node* parent = path[level - 1];
    // Refresh this child's MBR in the parent.
    for (Entry& e : parent->entries) {
      if (e.child.get() == node) {
        e.rect = node->ComputeMbr();
        break;
      }
    }
    if (split != nullptr) {
      Entry e;
      e.rect = split->ComputeMbr();
      e.child = std::move(split);
      parent->entries.push_back(std::move(e));
      if (parent->entries.size() >
          static_cast<size_t>(options_.max_entries)) {
        split = SplitNode(parent);
      } else {
        split = nullptr;
      }
    }
  }
}

void RTree::InsertImpl(uint64_t id, const Rect& rect) {
  std::vector<Node*> path;
  Node* leaf = ChooseLeaf(rect, &path);
  Entry e;
  e.rect = rect;
  e.id = id;
  leaf->entries.push_back(std::move(e));

  std::unique_ptr<Node> split;
  if (leaf->entries.size() > static_cast<size_t>(options_.max_entries)) {
    split = SplitNode(leaf);
  }
  AdjustTree(path, std::move(split));
}

void RTree::Insert(uint64_t id, const Rect& rect) {
  InsertImpl(id, rect);
  ++size_;
}

// ---------------------------------------------------------------------------
// Deletion
// ---------------------------------------------------------------------------

void RTree::CollectLeafEntries(Node* node, std::vector<Entry>* out) {
  if (node->leaf) {
    for (Entry& e : node->entries) out->push_back(std::move(e));
    return;
  }
  for (Entry& e : node->entries) CollectLeafEntries(e.child.get(), out);
}

bool RTree::RemoveRecursive(Node* node, uint64_t id, const Rect& rect,
                            std::vector<Entry>* orphans) {
  if (node->leaf) {
    for (size_t i = 0; i < node->entries.size(); ++i) {
      if (node->entries[i].id == id && node->entries[i].rect == rect) {
        node->entries.erase(node->entries.begin() + i);
        return true;
      }
    }
    return false;
  }
  for (size_t i = 0; i < node->entries.size(); ++i) {
    Entry& e = node->entries[i];
    if (!e.rect.Intersects(rect) && !(rect.IsEmpty() && e.rect.IsEmpty())) {
      continue;
    }
    if (RemoveRecursive(e.child.get(), id, rect, orphans)) {
      if (e.child->entries.size() < static_cast<size_t>(min_entries())) {
        // Condense: detach the underfull subtree; its remaining leaf
        // entries are re-inserted by the caller.
        CollectLeafEntries(e.child.get(), orphans);
        node->entries.erase(node->entries.begin() + i);
      } else {
        e.rect = e.child->ComputeMbr();
      }
      return true;
    }
  }
  return false;
}

bool RTree::Remove(uint64_t id, const Rect& rect) {
  std::vector<Entry> orphans;
  if (!RemoveRecursive(root_.get(), id, rect, &orphans)) return false;
  --size_;

  // Shrink the root while it is an internal node with a single child.
  while (!root_->leaf && root_->entries.size() == 1) {
    root_ = std::move(root_->entries[0].child);
  }
  if (!root_->leaf && root_->entries.empty()) {
    root_ = std::make_unique<Node>();
  }
  for (Entry& e : orphans) {
    InsertImpl(e.id, e.rect);
  }
  return true;
}

void RTree::Clear() {
  root_ = std::make_unique<Node>();
  size_ = 0;
}

// ---------------------------------------------------------------------------
// Search
// ---------------------------------------------------------------------------

void RTree::SearchRecursive(
    const Node* node, const Rect& window,
    const std::function<void(uint64_t, const Rect&)>& fn) const {
  for (const Entry& e : node->entries) {
    if (!e.rect.Intersects(window)) continue;
    if (node->leaf) {
      fn(e.id, e.rect);
    } else {
      SearchRecursive(e.child.get(), window, fn);
    }
  }
}

void RTree::Search(const Rect& window,
                   const std::function<void(uint64_t, const Rect&)>& fn) const {
  if (window.IsEmpty()) return;
  SearchRecursive(root_.get(), window, fn);
}

void RTree::SearchPoint(
    const Point& p, const std::function<void(uint64_t, const Rect&)>& fn) const {
  SearchRecursive(root_.get(), Rect{p.x, p.y, p.x, p.y}, fn);
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

int RTree::height() const {
  int h = 1;
  const Node* node = root_.get();
  while (!node->leaf) {
    ++h;
    node = node->entries.front().child.get();
  }
  return h;
}

bool RTree::CheckNode(const Node* node, int depth, int leaf_depth,
                      bool is_root) const {
  const size_t count = node->entries.size();
  if (!is_root) {
    if (count < static_cast<size_t>(min_entries()) ||
        count > static_cast<size_t>(options_.max_entries)) {
      return false;
    }
  } else if (count > static_cast<size_t>(options_.max_entries)) {
    return false;
  }
  if (node->leaf) return depth == leaf_depth;
  for (const Entry& e : node->entries) {
    if (!(e.rect == e.child->ComputeMbr())) return false;
    if (!CheckNode(e.child.get(), depth + 1, leaf_depth, false)) return false;
  }
  return true;
}

bool RTree::CheckStructure() const {
  return CheckNode(root_.get(), 1, height(), true);
}

}  // namespace stq
