// RTree: a Guttman R-tree (quadratic split) over (id, rectangle) entries.
//
// Substrate for the Q-index baseline (Prabhakar et al.), which builds an
// R-tree-like index over the *queries* and has every object probe it each
// evaluation period. Also usable as a general rectangle index.
//
// Supports insert, delete (with node condensation and re-insertion of
// orphaned entries), point and window search. Not thread-safe.

#ifndef STQ_RTREE_RTREE_H_
#define STQ_RTREE_RTREE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "stq/geo/point.h"
#include "stq/geo/rect.h"

namespace stq {

class RTree {
 public:
  struct Options {
    // Maximum entries per node (M); the minimum fill is M/2, but at
    // least 2.
    int max_entries = 8;
  };

  RTree();  // default Options
  explicit RTree(const Options& options);
  ~RTree();

  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;

  // Inserts an entry. Duplicate (id, rect) pairs are allowed and act as
  // independent entries.
  void Insert(uint64_t id, const Rect& rect);

  // Removes one entry matching (id, rect) exactly. Returns false when no
  // such entry exists.
  bool Remove(uint64_t id, const Rect& rect);

  // Removes every entry.
  void Clear();

  // Visits every entry whose rectangle intersects `window`.
  void Search(const Rect& window,
              const std::function<void(uint64_t, const Rect&)>& fn) const;

  // Visits every entry whose rectangle contains `p`.
  void SearchPoint(const Point& p,
                   const std::function<void(uint64_t, const Rect&)>& fn) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  int height() const;  // 1 for a tree that is a single leaf

  // Validation hook for tests: checks MBR containment, fanout bounds, and
  // uniform leaf depth. Returns false on violation.
  bool CheckStructure() const;

 private:
  struct Node;
  struct Entry {
    Rect rect;
    uint64_t id = 0;              // leaf entries
    std::unique_ptr<Node> child;  // internal entries
  };
  struct Node {
    bool leaf = true;
    std::vector<Entry> entries;
    Rect ComputeMbr() const;
  };

  int min_entries() const;

  // Insertion without size bookkeeping (shared by Insert and orphan
  // re-insertion during Remove).
  void InsertImpl(uint64_t id, const Rect& rect);
  Node* ChooseLeaf(const Rect& rect, std::vector<Node*>* path) const;
  std::unique_ptr<Node> SplitNode(Node* node);
  void AdjustTree(std::vector<Node*>& path, std::unique_ptr<Node> split);
  void GrowRoot(std::unique_ptr<Node> sibling);

  bool RemoveRecursive(Node* node, uint64_t id, const Rect& rect,
                       std::vector<Entry>* orphans);
  static void CollectLeafEntries(Node* node, std::vector<Entry>* out);
  void SearchRecursive(const Node* node, const Rect& window,
                       const std::function<void(uint64_t, const Rect&)>& fn)
      const;
  bool CheckNode(const Node* node, int depth, int leaf_depth,
                 bool is_root) const;

  Options options_;
  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace stq

#endif  // STQ_RTREE_RTREE_H_
