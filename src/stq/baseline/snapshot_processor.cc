#include "stq/baseline/snapshot_processor.h"

#include <algorithm>
#include <sstream>

#include "stq/common/check.h"
#include "stq/core/circle_evaluator.h"
#include "stq/core/predictive_evaluator.h"
#include "stq/core/range_evaluator.h"

namespace stq {

size_t SnapshotResult::TotalAnswerEntries() const {
  size_t total = 0;
  for (const auto& [qid, answer] : answers) total += answer.size();
  return total;
}

size_t SnapshotResult::WireBytes(const WireCostModel& model) const {
  size_t total = 0;
  for (const auto& [qid, answer] : answers) {
    total += model.CompleteAnswerBytes(answer.size());
  }
  return total;
}

SnapshotProcessor::SnapshotProcessor(const QueryProcessorOptions& options)
    : options_(options),
      grid_(options.bounds, options.grid_cells_per_side),
      knn_(EngineState{&grid_, &objects_, &queries_, &options_}) {
  STQ_CHECK(options_.Validate()) << "invalid QueryProcessorOptions";
}

Status SnapshotProcessor::UpsertObject(ObjectId id, const Point& loc,
                                       Timestamp t) {
  return UpsertPredictiveObject(id, loc, Velocity{}, t);
}

Status SnapshotProcessor::UpsertPredictiveObject(ObjectId id,
                                                 const Point& raw_loc,
                                                 const Velocity& vel,
                                                 Timestamp t) {
  // Same universe rule as QueryProcessor: locations clamp into bounds.
  const Point loc{
      std::clamp(raw_loc.x, options_.bounds.min_x, options_.bounds.max_x),
      std::clamp(raw_loc.y, options_.bounds.min_y, options_.bounds.max_y)};
  ObjectRecord* o = objects_.FindMutable(id);
  const bool predictive = !vel.IsZero();
  if (o == nullptr) {
    ObjectRecord rec;
    rec.id = id;
    rec.loc = loc;
    rec.vel = vel;
    rec.t = t;
    rec.predictive = predictive;
    if (predictive) {
      rec.footprint =
          rec.trajectory().FootprintBetween(t, t + options_.prediction_horizon);
      grid_.InsertObjectFootprint(id, rec.footprint);
    } else {
      grid_.InsertObject(id, loc);
    }
    objects_.Insert(std::move(rec));
    return Status::OK();
  }
  if (t < o->t) return Status::InvalidArgument("stale object report");
  if (o->predictive) {
    grid_.RemoveObjectFootprint(id, o->footprint);
  } else {
    grid_.RemoveObject(id, o->loc);
  }
  o->loc = loc;
  o->vel = vel;
  o->t = t;
  o->predictive = predictive;
  if (predictive) {
    o->footprint =
        o->trajectory().FootprintBetween(t, t + options_.prediction_horizon);
    grid_.InsertObjectFootprint(id, o->footprint);
  } else {
    grid_.InsertObject(id, loc);
  }
  return Status::OK();
}

Status SnapshotProcessor::RemoveObject(ObjectId id) {
  ObjectRecord* o = objects_.FindMutable(id);
  if (o == nullptr) return Status::NotFound("object unknown");
  if (o->predictive) {
    grid_.RemoveObjectFootprint(id, o->footprint);
  } else {
    grid_.RemoveObject(id, o->loc);
  }
  objects_.Erase(id);
  return Status::OK();
}

Status SnapshotProcessor::RegisterRangeQuery(QueryId id, const Rect& region) {
  const Rect clamped = region.Intersection(options_.bounds);
  if (clamped.IsEmpty()) return Status::InvalidArgument("empty region");
  if (queries_.Contains(id)) return Status::AlreadyExists("query exists");
  QueryRecord rec;
  rec.id = id;
  rec.kind = QueryKind::kRange;
  rec.region = clamped;
  queries_.Insert(std::move(rec));
  return Status::OK();
}

Status SnapshotProcessor::MoveRangeQuery(QueryId id, const Rect& region) {
  QueryRecord* q = queries_.FindMutable(id);
  if (q == nullptr || q->kind != QueryKind::kRange) {
    return Status::NotFound("range query unknown");
  }
  const Rect clamped = region.Intersection(options_.bounds);
  if (clamped.IsEmpty()) return Status::InvalidArgument("empty region");
  q->region = clamped;
  return Status::OK();
}

Status SnapshotProcessor::RegisterKnnQuery(QueryId id, const Point& center,
                                           int k) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (queries_.Contains(id)) return Status::AlreadyExists("query exists");
  QueryRecord rec;
  rec.id = id;
  rec.kind = QueryKind::kKnn;
  rec.circle = Circle{center, 0.0};
  rec.k = k;
  queries_.Insert(std::move(rec));
  return Status::OK();
}

Status SnapshotProcessor::MoveKnnQuery(QueryId id, const Point& center) {
  QueryRecord* q = queries_.FindMutable(id);
  if (q == nullptr || q->kind != QueryKind::kKnn) {
    return Status::NotFound("k-NN query unknown");
  }
  q->circle.center = center;
  return Status::OK();
}

Status SnapshotProcessor::RegisterCircleQuery(QueryId id, const Point& center,
                                              double radius) {
  if (radius <= 0.0) return Status::InvalidArgument("radius must be positive");
  if (queries_.Contains(id)) return Status::AlreadyExists("query exists");
  QueryRecord rec;
  rec.id = id;
  rec.kind = QueryKind::kCircleRange;
  rec.circle = Circle{center, radius};
  queries_.Insert(std::move(rec));
  return Status::OK();
}

Status SnapshotProcessor::MoveCircleQuery(QueryId id, const Point& center) {
  QueryRecord* q = queries_.FindMutable(id);
  if (q == nullptr || q->kind != QueryKind::kCircleRange) {
    return Status::NotFound("circle query unknown");
  }
  q->circle.center = center;
  return Status::OK();
}

Status SnapshotProcessor::RegisterPredictiveQuery(QueryId id,
                                                  const Rect& region,
                                                  double t_from, double t_to) {
  const Rect clamped = region.Intersection(options_.bounds);
  if (clamped.IsEmpty()) return Status::InvalidArgument("empty region");
  if (t_to < t_from) return Status::InvalidArgument("bad window");
  if (queries_.Contains(id)) return Status::AlreadyExists("query exists");
  QueryRecord rec;
  rec.id = id;
  rec.kind = QueryKind::kPredictiveRange;
  rec.region = clamped;
  rec.t_from = t_from;
  rec.t_to = t_to;
  queries_.Insert(std::move(rec));
  return Status::OK();
}

Status SnapshotProcessor::MovePredictiveQuery(QueryId id, const Rect& region) {
  QueryRecord* q = queries_.FindMutable(id);
  if (q == nullptr || q->kind != QueryKind::kPredictiveRange) {
    return Status::NotFound("predictive query unknown");
  }
  const Rect clamped = region.Intersection(options_.bounds);
  if (clamped.IsEmpty()) return Status::InvalidArgument("empty region");
  q->region = clamped;
  return Status::OK();
}

Status SnapshotProcessor::UnregisterQuery(QueryId id) {
  if (!queries_.Contains(id)) return Status::NotFound("query unknown");
  queries_.Erase(id);
  return Status::OK();
}

std::vector<ObjectId> SnapshotProcessor::EvaluateOne(
    const QueryRecord& q) const {
  std::vector<ObjectId> answer;
  switch (q.kind) {
    case QueryKind::kRange: {
      std::vector<ObjectId> candidates;
      grid_.CollectObjectsInRect(q.region, &candidates);
      for (ObjectId oid : candidates) {
        const ObjectRecord* o = objects_.Find(oid);
        STQ_DCHECK(o != nullptr);
        if (RangeEvaluator::Satisfies(*o, q)) answer.push_back(oid);
      }
      break;
    }
    case QueryKind::kPredictiveRange: {
      std::vector<ObjectId> candidates;
      grid_.CollectObjectsInRect(q.region, &candidates);
      for (ObjectId oid : candidates) {
        const ObjectRecord* o = objects_.Find(oid);
        STQ_DCHECK(o != nullptr);
        if (PredictiveEvaluator::Satisfies(*o, q, options_)) {
          answer.push_back(oid);
        }
      }
      break;
    }
    case QueryKind::kCircleRange: {
      std::vector<ObjectId> candidates;
      grid_.CollectObjectsInRect(q.circle.BoundingBox(), &candidates);
      for (ObjectId oid : candidates) {
        const ObjectRecord* o = objects_.Find(oid);
        STQ_DCHECK(o != nullptr);
        if (CircleEvaluator::Satisfies(*o, q, options_.bounds)) {
          answer.push_back(oid);
        }
      }
      break;
    }
    case QueryKind::kKnn: {
      for (const KnnEvaluator::Neighbor& n : knn_.Search(q.circle.center, q.k)) {
        answer.push_back(n.id);
      }
      break;
    }
  }
  std::sort(answer.begin(), answer.end());
  return answer;
}

SnapshotResult SnapshotProcessor::EvaluateTick(Timestamp now) {
  SnapshotResult result;
  result.time = now;
  result.answers.reserve(queries_.size());
  queries_.ForEach([&](const QueryRecord& q) {
    result.answers.emplace_back(q.id, EvaluateOne(q));
  });
  std::sort(result.answers.begin(), result.answers.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return result;
}

}  // namespace stq
