// SnapshotProcessor: the complete-answer baseline.
//
// "A naive way to process continuous spatio-temporal queries is to
// abstract the continuous queries into a series of snapshot queries ...
// issued to the server every T seconds." (paper, Section 1)
//
// Each EvaluateTick re-evaluates *every* registered query from scratch
// (using the same grid substrate for the spatial work, so the comparison
// with the incremental engine isolates the evaluation strategy, not the
// index), and ships the complete answer of every query. This is the
// baseline the paper's Figure 5 compares against.

#ifndef STQ_BASELINE_SNAPSHOT_PROCESSOR_H_
#define STQ_BASELINE_SNAPSHOT_PROCESSOR_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "stq/common/result.h"
#include "stq/common/status.h"
#include "stq/core/engine_state.h"
#include "stq/core/knn_evaluator.h"
#include "stq/core/options.h"

namespace stq {

// A complete-answer evaluation round: every query paired with its full
// answer, as a snapshot server would ship it.
struct SnapshotResult {
  Timestamp time = 0.0;
  // Sorted by query id; answers sorted by object id.
  std::vector<std::pair<QueryId, std::vector<ObjectId>>> answers;

  size_t TotalAnswerEntries() const;
  // Wire cost of shipping every complete answer.
  size_t WireBytes(const WireCostModel& model) const;
};

class SnapshotProcessor {
 public:
  explicit SnapshotProcessor(const QueryProcessorOptions& options = {});

  SnapshotProcessor(const SnapshotProcessor&) = delete;
  SnapshotProcessor& operator=(const SnapshotProcessor&) = delete;

  // Object reports (applied immediately; the snapshot model has no
  // incremental state to protect).
  Status UpsertObject(ObjectId id, const Point& loc, Timestamp t);
  Status UpsertPredictiveObject(ObjectId id, const Point& loc,
                                const Velocity& vel, Timestamp t);
  Status RemoveObject(ObjectId id);

  // Queries. The same classes the incremental engine supports.
  Status RegisterRangeQuery(QueryId id, const Rect& region);
  Status MoveRangeQuery(QueryId id, const Rect& region);
  Status RegisterKnnQuery(QueryId id, const Point& center, int k);
  Status MoveKnnQuery(QueryId id, const Point& center);
  Status RegisterCircleQuery(QueryId id, const Point& center, double radius);
  Status MoveCircleQuery(QueryId id, const Point& center);
  Status RegisterPredictiveQuery(QueryId id, const Rect& region, double t_from,
                                 double t_to);
  Status MovePredictiveQuery(QueryId id, const Rect& region);
  Status UnregisterQuery(QueryId id);

  // Recomputes and returns every query's complete answer.
  SnapshotResult EvaluateTick(Timestamp now);

  size_t num_objects() const { return objects_.size(); }
  size_t num_queries() const { return queries_.size(); }

 private:
  std::vector<ObjectId> EvaluateOne(const QueryRecord& q) const;

  QueryProcessorOptions options_;
  GridIndex grid_;
  ObjectStore objects_;
  QueryStore queries_;  // answer sets unused; regions/kinds only
  KnnEvaluator knn_;    // reused for its grid-based exact k-NN search
};

}  // namespace stq

#endif  // STQ_BASELINE_SNAPSHOT_PROCESSOR_H_
