#include "stq/baseline/qindex_processor.h"

#include <algorithm>

namespace stq {

QIndexProcessor::QIndexProcessor(const Rect& bounds) : bounds_(bounds) {}

Status QIndexProcessor::UpsertObject(ObjectId id, const Point& loc,
                                     Timestamp t) {
  auto it = objects_.find(id);
  if (it != objects_.end() && t < it->second.t) {
    return Status::InvalidArgument("stale object report");
  }
  objects_[id] = StoredObject{loc, t};
  return Status::OK();
}

Status QIndexProcessor::RemoveObject(ObjectId id) {
  if (objects_.erase(id) == 0) return Status::NotFound("object unknown");
  return Status::OK();
}

Status QIndexProcessor::RegisterRangeQuery(QueryId id, const Rect& region) {
  const Rect clamped = region.Intersection(bounds_);
  if (clamped.IsEmpty()) return Status::InvalidArgument("empty region");
  if (query_regions_.contains(id)) {
    return Status::AlreadyExists("query exists");
  }
  query_regions_.emplace(id, clamped);
  rtree_.Insert(id, clamped);
  return Status::OK();
}

Status QIndexProcessor::UnregisterQuery(QueryId id) {
  auto it = query_regions_.find(id);
  if (it == query_regions_.end()) return Status::NotFound("query unknown");
  rtree_.Remove(id, it->second);
  query_regions_.erase(it);
  return Status::OK();
}

SnapshotResult QIndexProcessor::EvaluateTick(Timestamp now) {
  SnapshotResult result;
  result.time = now;

  FlatMap<QueryId, std::vector<ObjectId>> answers;
  answers.reserve(query_regions_.size());
  for (const auto& [qid, region] : query_regions_) answers[qid];

  // Every object probes the query index — the Q-index evaluation model.
  for (const auto& [oid, obj] : objects_) {
    rtree_.SearchPoint(obj.loc, [&, object_id = oid](uint64_t qid,
                                                     const Rect& region) {
      if (region.Contains(obj.loc)) {
        answers[qid].push_back(object_id);
      }
    });
  }

  result.answers.reserve(answers.size());
  for (auto& [qid, answer] : answers) {
    std::sort(answer.begin(), answer.end());
    result.answers.emplace_back(qid, std::move(answer));
  }
  std::sort(result.answers.begin(), result.answers.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return result;
}

}  // namespace stq
