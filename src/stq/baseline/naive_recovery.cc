#include "stq/baseline/naive_recovery.h"

namespace stq {

size_t FullAnswerResendBytes(const QueryProcessor& processor,
                             const std::vector<QueryId>& queries,
                             const WireCostModel& model) {
  size_t total = 0;
  for (QueryId qid : queries) {
    Result<std::vector<ObjectId>> answer = processor.CurrentAnswer(qid);
    if (!answer.ok()) continue;
    total += model.CompleteAnswerBytes(answer->size());
  }
  return total;
}

}  // namespace stq
