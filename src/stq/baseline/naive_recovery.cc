#include "stq/baseline/naive_recovery.h"

namespace stq {

size_t FullAnswerResendBytes(const QueryProcessor& processor,
                             const std::vector<QueryId>& queries,
                             const WireCostModel& model) {
  size_t total = 0;
  for (QueryId qid : queries) {
    const QueryRecord* q = processor.query_store().Find(qid);
    if (q == nullptr) continue;
    total += model.CompleteAnswerBytes(q->answer.size());
  }
  return total;
}

}  // namespace stq
