// QIndexProcessor: the Q-index baseline (Prabhakar et al., IEEE ToC 2002).
//
// "The main idea of the Q-index is to build an R-tree-like index structure
// on the queries instead of the objects. Then, at each time interval T,
// moving objects probe the Q-index to find the queries they belong to.
// The Q-index is limited in two aspects: (1) It performs reevaluation of
// all the queries every T time units. (2) It is applicable only for
// stationary queries." (paper, Section 2)
//
// Both limitations are reproduced deliberately: only stationary range
// queries are accepted, and every tick probes every object.

#ifndef STQ_BASELINE_QINDEX_PROCESSOR_H_
#define STQ_BASELINE_QINDEX_PROCESSOR_H_

#include "stq/baseline/snapshot_processor.h"
#include "stq/common/flat_hash.h"
#include "stq/common/status.h"
#include "stq/geo/point.h"
#include "stq/geo/rect.h"
#include "stq/rtree/rtree.h"

namespace stq {

class QIndexProcessor {
 public:
  explicit QIndexProcessor(const Rect& bounds = Rect{0.0, 0.0, 1.0, 1.0});

  QIndexProcessor(const QIndexProcessor&) = delete;
  QIndexProcessor& operator=(const QIndexProcessor&) = delete;

  Status UpsertObject(ObjectId id, const Point& loc, Timestamp t);
  Status RemoveObject(ObjectId id);

  // Stationary rectangular range queries only (the Q-index limitation).
  Status RegisterRangeQuery(QueryId id, const Rect& region);
  Status UnregisterQuery(QueryId id);

  // Probes every object against the query R-tree and returns complete
  // answers for all queries.
  SnapshotResult EvaluateTick(Timestamp now);

  size_t num_objects() const { return objects_.size(); }
  size_t num_queries() const { return query_regions_.size(); }
  const RTree& rtree() const { return rtree_; }

 private:
  struct StoredObject {
    Point loc;
    Timestamp t = 0.0;
  };

  Rect bounds_;
  RTree rtree_;  // indexes query regions by query id
  FlatMap<QueryId, Rect> query_regions_;
  FlatMap<ObjectId, StoredObject> objects_;
};

}  // namespace stq

#endif  // STQ_BASELINE_QINDEX_PROCESSOR_H_
