// VciProcessor: the Velocity-Constrained Indexing baseline (Prabhakar et
// al., IEEE ToC 2002 — the same paper the Q-index comes from).
//
// Idea: build an R-tree over the *objects* and let it go stale. Every
// object's speed is bounded by `max_speed`, so at evaluation time an
// object indexed at time t0 lies within max_speed * (now - t0) of its
// indexed position. A range query therefore searches its region expanded
// by the worst-case staleness slack and filters the candidates against
// current positions. The index is only rebuilt periodically.
//
// Like the paper's other baselines this processor re-evaluates every
// query each period and ships complete answers; it trades index
// maintenance for searches that degrade as the index ages.

#ifndef STQ_BASELINE_VCI_PROCESSOR_H_
#define STQ_BASELINE_VCI_PROCESSOR_H_

#include "stq/baseline/snapshot_processor.h"  // SnapshotResult
#include "stq/common/flat_hash.h"
#include "stq/common/status.h"
#include "stq/rtree/rtree.h"

namespace stq {

class VciProcessor {
 public:
  struct Options {
    Rect bounds = Rect{0.0, 0.0, 1.0, 1.0};
    // The system-wide speed bound objects are known to respect
    // (space units / second). Violations cause false negatives.
    double max_speed = 0.001;
    // Rebuild the object index when its age exceeds this (seconds);
    // <= 0 rebuilds every evaluation.
    double refresh_interval = 60.0;
  };

  explicit VciProcessor(const Options& options);

  VciProcessor(const VciProcessor&) = delete;
  VciProcessor& operator=(const VciProcessor&) = delete;

  // New objects enter the index immediately (at their reported location);
  // subsequent reports only update the current-position table, leaving
  // the index stale until the next rebuild.
  Status UpsertObject(ObjectId id, const Point& loc, Timestamp t);
  Status RemoveObject(ObjectId id);

  // Stationary rectangular range queries.
  Status RegisterRangeQuery(QueryId id, const Rect& region);
  Status UnregisterQuery(QueryId id);

  // Evaluates every query (expanded search + exact filter) and returns
  // complete answers. Rebuilds the index first when it is too old.
  SnapshotResult EvaluateTick(Timestamp now);

  // Forces an index rebuild from current positions.
  void RebuildIndex(Timestamp now);

  // Current worst-case staleness slack at time `now`.
  double SlackAt(Timestamp now) const;

  size_t num_objects() const { return objects_.size(); }
  size_t num_queries() const { return query_regions_.size(); }
  size_t rebuilds() const { return rebuilds_; }

 private:
  struct StoredObject {
    Point current;        // latest reported location
    Timestamp t = 0.0;    // latest report time
    Point indexed;        // location the R-tree knows
    Timestamp indexed_at = 0.0;
  };

  static Rect PointRect(const Point& p) { return Rect{p.x, p.y, p.x, p.y}; }

  Options options_;
  RTree rtree_;  // object positions as degenerate rectangles
  FlatMap<ObjectId, StoredObject> objects_;
  FlatMap<QueryId, Rect> query_regions_;
  // Oldest indexed_at among live objects' index entries (the staleness
  // anchor); refreshed on rebuild.
  Timestamp oldest_index_time_ = 0.0;
  bool index_empty_ = true;
  size_t rebuilds_ = 0;
};

}  // namespace stq

#endif  // STQ_BASELINE_VCI_PROCESSOR_H_
