// Naive out-of-sync recovery baseline: "once the client wakes up, it
// empties its previous result and sends a wakeup message to the server.
// The server replies by the query answer stored at the server side."
// (paper, Section 3.3)
//
// Server implements this directly via RecoveryPolicy::kFullAnswer; the
// helpers here compute what such a recovery would cost without running
// one, for side-by-side accounting in tests and benches.

#ifndef STQ_BASELINE_NAIVE_RECOVERY_H_
#define STQ_BASELINE_NAIVE_RECOVERY_H_

#include <cstddef>
#include <vector>

#include "stq/common/bytes.h"
#include "stq/common/ids.h"
#include "stq/core/query_processor.h"

namespace stq {

// Bytes a full-answer resend of the given queries would ship right now.
// Unknown query ids contribute nothing.
size_t FullAnswerResendBytes(const QueryProcessor& processor,
                             const std::vector<QueryId>& queries,
                             const WireCostModel& model);

}  // namespace stq

#endif  // STQ_BASELINE_NAIVE_RECOVERY_H_
