#include "stq/baseline/vci_processor.h"

#include <algorithm>

#include "stq/common/check.h"

namespace stq {

VciProcessor::VciProcessor(const Options& options) : options_(options) {
  STQ_CHECK(options_.max_speed >= 0.0);
}

Status VciProcessor::UpsertObject(ObjectId id, const Point& loc,
                                  Timestamp t) {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    StoredObject o;
    o.current = loc;
    o.t = t;
    o.indexed = loc;
    o.indexed_at = t;
    objects_.emplace(id, o);
    rtree_.Insert(id, PointRect(loc));
    if (index_empty_ || t < oldest_index_time_) oldest_index_time_ = t;
    index_empty_ = false;
    return Status::OK();
  }
  if (t < it->second.t) return Status::InvalidArgument("stale object report");
  // Only the current-position table moves; the index entry stays put and
  // the staleness slack covers the drift.
  it->second.current = loc;
  it->second.t = t;
  return Status::OK();
}

Status VciProcessor::RemoveObject(ObjectId id) {
  auto it = objects_.find(id);
  if (it == objects_.end()) return Status::NotFound("object unknown");
  const bool removed = rtree_.Remove(id, PointRect(it->second.indexed));
  STQ_CHECK(removed) << "index entry missing for object " << id;
  objects_.erase(it);
  if (objects_.empty()) index_empty_ = true;
  return Status::OK();
}

Status VciProcessor::RegisterRangeQuery(QueryId id, const Rect& region) {
  const Rect clamped = region.Intersection(options_.bounds);
  if (clamped.IsEmpty()) return Status::InvalidArgument("empty region");
  if (query_regions_.contains(id)) {
    return Status::AlreadyExists("query exists");
  }
  query_regions_.emplace(id, clamped);
  return Status::OK();
}

Status VciProcessor::UnregisterQuery(QueryId id) {
  if (query_regions_.erase(id) == 0) return Status::NotFound("query unknown");
  return Status::OK();
}

void VciProcessor::RebuildIndex(Timestamp now) {
  // Rebuild from scratch: cheaper than per-entry relocation at high churn
  // and keeps the structure tight.
  rtree_.Clear();
  oldest_index_time_ = now;
  index_empty_ = objects_.empty();
  for (auto& [id, o] : objects_) {
    o.indexed = o.current;
    o.indexed_at = now;
    rtree_.Insert(id, PointRect(o.current));
  }
  ++rebuilds_;
}

double VciProcessor::SlackAt(Timestamp now) const {
  if (index_empty_) return 0.0;
  return options_.max_speed * std::max(0.0, now - oldest_index_time_);
}

SnapshotResult VciProcessor::EvaluateTick(Timestamp now) {
  if (options_.refresh_interval <= 0.0 ||
      (!index_empty_ && now - oldest_index_time_ > options_.refresh_interval)) {
    RebuildIndex(now);
  }

  SnapshotResult result;
  result.time = now;
  const double slack = SlackAt(now);

  result.answers.reserve(query_regions_.size());
  for (const auto& [qid, region] : query_regions_) {
    std::vector<ObjectId> answer;
    // Expanded search over stale index positions, exact filter against
    // current positions.
    rtree_.Search(region.Expanded(slack), [&](uint64_t oid, const Rect&) {
      const auto it = objects_.find(oid);
      STQ_DCHECK(it != objects_.end());
      if (region.Contains(it->second.current)) answer.push_back(oid);
    });
    std::sort(answer.begin(), answer.end());
    answer.erase(std::unique(answer.begin(), answer.end()), answer.end());
    result.answers.emplace_back(qid, std::move(answer));
  }
  std::sort(result.answers.begin(), result.answers.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return result;
}

}  // namespace stq
