// FaultInjectionEnv: an in-memory Env with scriptable failures, modelled
// after the injectable-Env pattern LevelDB-style storage engines use to
// test recovery code.
//
// The filesystem is held entirely in memory as two views:
//   - the *live* view: what the running process observes (its own
//     buffered writes included), and
//   - the *durable* view: what would survive a machine crash — per file,
//     only bytes written before the last WritableFile::Sync, and only
//     names whose create/rename/remove was followed by SyncDir on the
//     parent directory (metadata ops are journalled per directory, in
//     order).
//
// On top of the two views the env can:
//   - fail (or delay) any call by failpoint name and call count, with an
//     arbitrary error (e.g. an ENOSPC-style "no space left on device"),
//   - tear an append at a byte offset (a prefix of the failing write
//     still reaches the buffer),
//   - die at the K-th I/O call (CrashAfterOps): the call and every later
//     one fail with "simulated crash" until SimulateCrash() is invoked,
//   - SimulateCrash(): reset the live view to the durable view, dropping
//     unsynced data — or, in kKeepPrefix mode, keeping a seeded
//     random-length prefix of each file's unsynced suffix and a seeded
//     random prefix of each directory's pending metadata journal, which
//     is how torn WAL tails and half-applied renames happen in reality.
//
// All methods are thread-safe. Failpoint op names are the
// CONTRIBUTING.md "Failpoints" vocabulary: new_writable, new_sequential,
// append, flush, sync, close, read, rename, remove, truncate, syncdir,
// mkdir, listdir, filesize. (FileExists returns a bare bool and has no
// failpoint.)

#ifndef STQ_STORAGE_FAULT_ENV_H_
#define STQ_STORAGE_FAULT_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "stq/common/annotations.h"
#include "stq/common/mutex.h"
#include "stq/storage/env.h"

namespace stq {

class FaultInjectionEnv final : public Env {
 public:
  struct Failpoint {
    // Matching calls let through before the failpoint triggers.
    uint64_t fail_after = 0;
    // Calls that fail once triggered; -1 fails forever.
    int fail_count = 1;
    Status error = Status::IOError("injected fault");
    // For `append` failpoints: bytes of the failing write that still
    // reach the buffer (a torn write). -1 buffers nothing.
    int64_t tear_bytes = -1;
    // Only calls whose path contains this substring match (empty = all).
    std::string path_substring;
    // Sleep applied to matching calls before they run or fail.
    int delay_ms = 0;
  };

  // What happens to buffered-but-unsynced bytes at SimulateCrash().
  enum class UnsyncedLoss {
    kDropAll,     // only synced data and dir-synced names survive
    kKeepPrefix,  // seeded random prefixes of unsynced data/metadata survive
    kKeepAll,     // everything survives (clean power-loss-free stop)
  };

  FaultInjectionEnv() = default;

  // --- Fault scripting -------------------------------------------------------

  // Installs (replaces) the failpoint for `op`. See the class comment for
  // the op vocabulary.
  void SetFailpoint(const std::string& op, Failpoint fp);
  void ClearFailpoint(const std::string& op);
  void ClearFailpoints();

  // Every I/O call past the next `n` fails with "simulated crash" until
  // SimulateCrash() is called. Counting starts now.
  void CrashAfterOps(uint64_t n);
  bool crashed() const;

  // Total I/O calls observed (for sizing deterministic crash sweeps).
  uint64_t op_count() const;

  // The machine dies and reboots: the live view is reset to the durable
  // view (see class comment for `loss`), open handles are disconnected,
  // pending faults and the crash trigger are cleared.
  void SimulateCrash(UnsyncedLoss loss = UnsyncedLoss::kDropAll,
                     uint64_t seed = 0);

  // Test helpers: live-view file contents (empty if missing) and the
  // number of bytes of `path` that would survive a kDropAll crash.
  std::string FileContentsForTest(const std::string& path) const;
  uint64_t DurableBytesForTest(const std::string& path) const;

  // --- Env interface ---------------------------------------------------------

  Status NewWritableFile(const std::string& path, bool truncate,
                         std::unique_ptr<WritableFile>* file) override;
  Status NewSequentialFile(const std::string& path,
                           std::unique_ptr<SequentialFile>* file) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;
  Status SyncDir(const std::string& dir) override;
  Status CreateDir(const std::string& dir) override;
  Status ListDir(const std::string& dir,
                 std::vector<std::string>* names) override;
  bool FileExists(const std::string& path) override;
  Status GetFileSize(const std::string& path, uint64_t* size) override;

 private:
  friend class FaultWritableFile;
  friend class FaultSequentialFile;

  struct FileNode {
    std::string data;
    size_t synced = 0;  // data[0, synced) is fsync'ed
  };

  struct MetaOp {
    enum Kind { kCreate, kRename, kRemove } kind;
    std::string a;  // path (create/remove) or source (rename)
    std::string b;  // destination (rename)
  };

  struct FailpointState {
    Failpoint spec;
    uint64_t calls = 0;  // matching calls seen so far
    int failures = 0;    // failures dealt so far
  };

  // Charges one I/O call against the crash budget and the `op` failpoint.
  // Returns non-OK if the call must fail; *tear_bytes (may be null)
  // receives the torn-write allowance for append ops.
  Status Charge(const std::string& op, const std::string& path,
                int64_t* tear_bytes = nullptr) STQ_REQUIRES(mu_);

  // True while `node` is still reachable in the live view (handles to
  // pre-crash nodes go stale and must not touch durable state).
  bool IsLive(const std::string& path,
              const std::shared_ptr<FileNode>& node) const STQ_REQUIRES(mu_);

  void RecordMetaOp(MetaOp op) STQ_REQUIRES(mu_);

  // One mutex guards the whole in-memory filesystem: both views, the
  // metadata journals, and the fault scripting state. File handles
  // (FaultWritableFile / FaultSequentialFile) lock it through their env
  // pointer before touching their FileNode — nodes are reached only via
  // `live_` or a handle, so they are covered by mu_ too.
  mutable Mutex mu_;
  std::map<std::string, std::shared_ptr<FileNode>> live_ STQ_GUARDED_BY(mu_);
  // Name-durable path -> content.
  std::map<std::string, std::string> durable_ STQ_GUARDED_BY(mu_);
  // Pending metadata ops per parent dir.
  std::map<std::string, std::vector<MetaOp>> pending_meta_ STQ_GUARDED_BY(mu_);
  // Live dirs (value: durably exists).
  std::map<std::string, bool> dirs_ STQ_GUARDED_BY(mu_);
  std::map<std::string, FailpointState> failpoints_ STQ_GUARDED_BY(mu_);
  uint64_t ops_ STQ_GUARDED_BY(mu_) = 0;
  uint64_t crash_after_ STQ_GUARDED_BY(mu_) = 0;  // 0 = disarmed
  bool crashed_ STQ_GUARDED_BY(mu_) = false;
};

}  // namespace stq

#endif  // STQ_STORAGE_FAULT_ENV_H_
