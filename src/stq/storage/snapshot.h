// Snapshot: a point-in-time image of the persistent server state (the
// paper's repository server: "once a moving object or query sends new
// information, the old information becomes persistent and is stored in a
// repository server").
//
// The snapshot file reuses the WAL frame format: a kEpoch header record,
// then a sequence of records describing every live object, query, and
// committed answer, terminated by a kTick record carrying the last tick
// time. The terminal kTick doubles as an end-of-file marker: a snapshot
// without one was torn mid-write and is rejected as Corruption rather
// than silently read short.

#ifndef STQ_STORAGE_SNAPSHOT_H_
#define STQ_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "stq/common/status.h"
#include "stq/storage/env.h"
#include "stq/storage/records.h"

namespace stq {

// The state reconstructed from a snapshot plus a WAL replay.
struct PersistedState {
  std::vector<PersistedObject> objects;    // sorted by id
  std::vector<PersistedQuery> queries;     // sorted by id
  std::vector<PersistedCommit> commits;    // sorted by id
  Timestamp last_tick = 0.0;

  friend bool operator==(const PersistedState&, const PersistedState&);
};

// Writes a complete snapshot file at exactly `path` (no rename): epoch
// header, state records, terminal tick — synced and closed. On failure
// the half-written file is removed (best-effort). Building block for
// WriteSnapshot and Repository::Checkpoint, which add the atomic
// rename + directory sync around it.
Status WriteSnapshotFile(Env* env, const std::string& path,
                         const PersistedState& state, uint64_t epoch);

// Writes `state` to `path`, replacing any existing file. The write is
// crash-safe: a temp file is written, synced, and renamed over `path`,
// then the parent directory is synced so the rename itself is durable.
// On failure the temp file is removed (best-effort) and any existing
// snapshot at `path` is untouched. `env == nullptr` means Env::Default().
Status WriteSnapshot(Env* env, const std::string& path,
                     const PersistedState& state, uint64_t epoch);
inline Status WriteSnapshot(const std::string& path,
                            const PersistedState& state) {
  return WriteSnapshot(nullptr, path, state, /*epoch=*/0);
}

// Loads a snapshot. A missing file yields an empty state (fresh start)
// with *epoch == 0. A file without a terminal kTick record is Corruption
// (torn snapshot). `epoch` may be null.
Status ReadSnapshot(Env* env, const std::string& path, PersistedState* state,
                    uint64_t* epoch);
inline Status ReadSnapshot(const std::string& path, PersistedState* state) {
  return ReadSnapshot(nullptr, path, state, nullptr);
}

}  // namespace stq

#endif  // STQ_STORAGE_SNAPSHOT_H_
