// Snapshot: a point-in-time image of the persistent server state (the
// paper's repository server: "once a moving object or query sends new
// information, the old information becomes persistent and is stored in a
// repository server").
//
// The snapshot file reuses the WAL frame format: a sequence of records
// describing every live object, query, committed answer, and the last
// tick time.

#ifndef STQ_STORAGE_SNAPSHOT_H_
#define STQ_STORAGE_SNAPSHOT_H_

#include <string>
#include <vector>

#include "stq/common/status.h"
#include "stq/storage/records.h"

namespace stq {

// The state reconstructed from a snapshot plus a WAL replay.
struct PersistedState {
  std::vector<PersistedObject> objects;    // sorted by id
  std::vector<PersistedQuery> queries;     // sorted by id
  std::vector<PersistedCommit> commits;    // sorted by id
  Timestamp last_tick = 0.0;

  friend bool operator==(const PersistedState&, const PersistedState&);
};

// Writes `state` to `path`, replacing any existing file.
Status WriteSnapshot(const std::string& path, const PersistedState& state);

// Loads a snapshot. A missing file yields an empty state (fresh start).
Status ReadSnapshot(const std::string& path, PersistedState* state);

}  // namespace stq

#endif  // STQ_STORAGE_SNAPSHOT_H_
