// Append-only log with CRC-framed records.
//
// Frame layout: [crc32c: u32] [payload_len: u32] [type: u8] [payload].
// The CRC covers type + payload. A reader treats a truncated final frame
// as a clean end of log (the crash happened mid-append) but a CRC mismatch
// on a complete frame as corruption.

#ifndef STQ_STORAGE_WAL_H_
#define STQ_STORAGE_WAL_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "stq/common/status.h"

namespace stq {

class LogWriter {
 public:
  LogWriter() = default;
  ~LogWriter();

  LogWriter(const LogWriter&) = delete;
  LogWriter& operator=(const LogWriter&) = delete;

  // Opens `path` for appending (created if missing). `truncate` starts a
  // fresh log.
  Status Open(const std::string& path, bool truncate);

  Status Append(uint8_t type, const std::string& payload);

  // Flushes user-space buffers and fsyncs.
  Status Sync();

  Status Close();
  bool is_open() const { return file_ != nullptr; }

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
};

class LogReader {
 public:
  LogReader() = default;
  ~LogReader();

  LogReader(const LogReader&) = delete;
  LogReader& operator=(const LogReader&) = delete;

  Status Open(const std::string& path);

  // Reads the next record. Returns:
  //  - OK with *eof == false: a record was read,
  //  - OK with *eof == true: clean end of log (including a truncated tail),
  //  - Corruption: CRC mismatch or impossible frame.
  Status ReadRecord(uint8_t* type, std::string* payload, bool* eof);

  Status Close();

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
};

}  // namespace stq

#endif  // STQ_STORAGE_WAL_H_
