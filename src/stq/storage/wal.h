// Append-only log with CRC-framed records.
//
// Frame layout: [crc32c: u32] [payload_len: u32] [type: u8] [payload].
// The CRC covers type + payload. A reader treats a truncated final frame
// as a clean end of log (the crash happened mid-append) but a CRC mismatch
// on a complete frame as corruption.
//
// All I/O goes through an stq::Env so fault-injection tests can exercise
// failed appends, torn writes, and lost syncs (see fault_env.h).
//
// Error stickiness: the first failed Append/Sync poisons the writer. A
// partial frame may already be in the file, so a later Append would land
// on top of it and corrupt everything after; instead, every call after a
// failure returns the original error until the writer is discarded.

#ifndef STQ_STORAGE_WAL_H_
#define STQ_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>

#include "stq/common/status.h"
#include "stq/storage/env.h"

namespace stq {

class LogWriter {
 public:
  LogWriter() = default;
  // A writer must be Close()d (surfacing the error) or Abandon()ed
  // before destruction; destroying one with buffered data would silently
  // drop it. Enforced by STQ_DCHECK in debug/invariant builds.
  ~LogWriter();

  LogWriter(const LogWriter&) = delete;
  LogWriter& operator=(const LogWriter&) = delete;

  // Opens `path` for appending (created if missing). `truncate` starts a
  // fresh log. `env == nullptr` means Env::Default().
  Status Open(Env* env, const std::string& path, bool truncate);
  Status Open(const std::string& path, bool truncate) {
    return Open(nullptr, path, truncate);
  }

  Status Append(uint8_t type, const std::string& payload);

  // Flushes user-space buffers and fsyncs.
  Status Sync();

  Status Close();

  // Drops the file handle without surfacing Close errors, for paths that
  // model a crash (Repository teardown, tests). Marks the writer
  // poisoned so the destructor check passes.
  void Abandon();

  bool is_open() const { return file_ != nullptr; }

  // False once an Append/Sync/Close has failed; `error()` is the first
  // failure.
  bool healthy() const { return status_.ok(); }
  const Status& error() const { return status_; }

 private:
  std::unique_ptr<WritableFile> file_;
  std::string path_;
  Status status_;  // sticky: first I/O failure
};

class LogReader {
 public:
  LogReader() = default;
  ~LogReader();

  LogReader(const LogReader&) = delete;
  LogReader& operator=(const LogReader&) = delete;

  Status Open(Env* env, const std::string& path);
  Status Open(const std::string& path) { return Open(nullptr, path); }

  // Reads the next record. Returns:
  //  - OK with *eof == false: a record was read,
  //  - OK with *eof == true: clean end of log (including a truncated tail),
  //  - Corruption: CRC mismatch or impossible frame. The message carries
  //    the byte offset and record index of the bad frame.
  Status ReadRecord(uint8_t* type, std::string* payload, bool* eof);

  Status Close();

  // Byte offset just past the last successfully read record — on a torn
  // tail or corruption, the length the file should be truncated to so a
  // fresh append cannot land on top of garbage.
  uint64_t valid_offset() const { return valid_offset_; }

  // Byte offset at which the most recent ReadRecord started.
  uint64_t last_record_offset() const { return last_record_offset_; }

  // Complete records read so far.
  uint64_t records_read() const { return records_; }

 private:
  std::unique_ptr<SequentialFile> file_;
  std::string path_;
  uint64_t offset_ = 0;             // current read position
  uint64_t valid_offset_ = 0;       // end of last good record
  uint64_t last_record_offset_ = 0; // start of the record being read
  uint64_t records_ = 0;
};

}  // namespace stq

#endif  // STQ_STORAGE_WAL_H_
