// Persistent record types: the vocabulary both the WAL and the snapshot
// file are written in.

#ifndef STQ_STORAGE_RECORDS_H_
#define STQ_STORAGE_RECORDS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "stq/common/clock.h"
#include "stq/common/ids.h"
#include "stq/common/status.h"
#include "stq/core/query_store.h"
#include "stq/geo/point.h"
#include "stq/geo/rect.h"

namespace stq {

enum class RecordType : uint8_t {
  kObjectUpsert = 1,
  kObjectRemove = 2,
  kQueryRegister = 3,
  kQueryMoveRect = 4,
  kQueryMoveCenter = 5,
  kQueryUnregister = 6,
  kCommit = 7,
  kTick = 8,
  // File-header record carrying the checkpoint epoch. Written first in
  // both the snapshot and the WAL; a WAL whose epoch differs from the
  // snapshot's is a stale leftover from before a checkpoint and is
  // ignored on recovery. Files without it (legacy) are epoch 0.
  kEpoch = 9,
};

struct PersistedObject {
  ObjectId id = 0;
  Point loc;
  Velocity vel;
  Timestamp t = 0.0;
  bool predictive = false;
};

struct PersistedQuery {
  QueryId id = 0;
  QueryKind kind = QueryKind::kRange;
  Rect region;    // range / predictive
  Point center;   // knn / circle
  int k = 0;      // knn
  double radius = 0.0;  // circle
  double t_from = 0.0;
  double t_to = 0.0;
  // Client channel the query's results are bound to (0 = unbound).
  ClientId owner = 0;
};

struct PersistedCommit {
  QueryId id = 0;
  std::vector<ObjectId> answer;
};

inline bool operator==(const PersistedObject& a, const PersistedObject& b) {
  return a.id == b.id && a.loc == b.loc && a.vel == b.vel && a.t == b.t &&
         a.predictive == b.predictive;
}

inline bool operator==(const PersistedQuery& a, const PersistedQuery& b) {
  return a.id == b.id && a.kind == b.kind && a.region == b.region &&
         a.center == b.center && a.k == b.k && a.radius == b.radius &&
         a.t_from == b.t_from && a.t_to == b.t_to && a.owner == b.owner;
}

inline bool operator==(const PersistedCommit& a, const PersistedCommit& b) {
  return a.id == b.id && a.answer == b.answer;
}

// Payload encoders (append to *out).
void EncodeObjectUpsert(const PersistedObject& o, std::string* out);
void EncodeObjectRemove(ObjectId id, std::string* out);
void EncodeQueryRegister(const PersistedQuery& q, std::string* out);
void EncodeQueryMoveRect(QueryId id, const Rect& region, std::string* out);
void EncodeQueryMoveCenter(QueryId id, const Point& center, std::string* out);
void EncodeQueryUnregister(QueryId id, std::string* out);
void EncodeCommit(const PersistedCommit& c, std::string* out);
void EncodeTick(Timestamp t, std::string* out);
void EncodeEpoch(uint64_t epoch, std::string* out);

// Payload decoders. Return Corruption on malformed payloads.
Status DecodeObjectUpsert(const std::string& payload, PersistedObject* o);
Status DecodeObjectRemove(const std::string& payload, ObjectId* id);
Status DecodeQueryRegister(const std::string& payload, PersistedQuery* q);
Status DecodeQueryMoveRect(const std::string& payload, QueryId* id,
                           Rect* region);
Status DecodeQueryMoveCenter(const std::string& payload, QueryId* id,
                             Point* center);
Status DecodeQueryUnregister(const std::string& payload, QueryId* id);
Status DecodeCommit(const std::string& payload, PersistedCommit* c);
Status DecodeTick(const std::string& payload, Timestamp* t);
Status DecodeEpoch(const std::string& payload, uint64_t* epoch);

}  // namespace stq

#endif  // STQ_STORAGE_RECORDS_H_
