#include "stq/storage/repository.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>

namespace stq {

Repository::Repository(std::string dir)
    : dir_(std::move(dir)),
      snapshot_path_(dir_ + "/SNAPSHOT"),
      wal_path_(dir_ + "/WAL") {}

Status Repository::Open() {
  if (open_) return Status::FailedPrecondition("repository already open");
  STQ_RETURN_IF_ERROR(ReadSnapshot(snapshot_path_, &recovered_));
  STQ_RETURN_IF_ERROR(ReplayWal());
  STQ_RETURN_IF_ERROR(wal_.Open(wal_path_, /*truncate=*/false));
  open_ = true;
  return Status::OK();
}

Status Repository::ReplayWal() {
  LogReader reader;
  if (!reader.Open(wal_path_).ok()) {
    return Status::OK();  // no WAL yet: fresh start
  }

  // Replay onto id-keyed maps so later records supersede earlier ones.
  std::map<ObjectId, PersistedObject> objects;
  std::map<QueryId, PersistedQuery> queries;
  std::map<QueryId, PersistedCommit> commits;
  for (const PersistedObject& o : recovered_.objects) objects[o.id] = o;
  for (const PersistedQuery& q : recovered_.queries) queries[q.id] = q;
  for (const PersistedCommit& c : recovered_.commits) commits[c.id] = c;

  for (;;) {
    uint8_t type = 0;
    std::string payload;
    bool eof = false;
    STQ_RETURN_IF_ERROR(reader.ReadRecord(&type, &payload, &eof));
    if (eof) break;
    switch (static_cast<RecordType>(type)) {
      case RecordType::kObjectUpsert: {
        PersistedObject o;
        STQ_RETURN_IF_ERROR(DecodeObjectUpsert(payload, &o));
        objects[o.id] = o;
        break;
      }
      case RecordType::kObjectRemove: {
        ObjectId id = 0;
        STQ_RETURN_IF_ERROR(DecodeObjectRemove(payload, &id));
        objects.erase(id);
        break;
      }
      case RecordType::kQueryRegister: {
        PersistedQuery q;
        STQ_RETURN_IF_ERROR(DecodeQueryRegister(payload, &q));
        queries[q.id] = q;
        break;
      }
      case RecordType::kQueryMoveRect: {
        QueryId id = 0;
        Rect region;
        STQ_RETURN_IF_ERROR(DecodeQueryMoveRect(payload, &id, &region));
        auto it = queries.find(id);
        if (it != queries.end()) it->second.region = region;
        break;
      }
      case RecordType::kQueryMoveCenter: {
        QueryId id = 0;
        Point center;
        STQ_RETURN_IF_ERROR(DecodeQueryMoveCenter(payload, &id, &center));
        auto it = queries.find(id);
        if (it != queries.end()) it->second.center = center;
        break;
      }
      case RecordType::kQueryUnregister: {
        QueryId id = 0;
        STQ_RETURN_IF_ERROR(DecodeQueryUnregister(payload, &id));
        queries.erase(id);
        commits.erase(id);
        break;
      }
      case RecordType::kCommit: {
        PersistedCommit c;
        STQ_RETURN_IF_ERROR(DecodeCommit(payload, &c));
        commits[c.id] = std::move(c);
        break;
      }
      case RecordType::kTick: {
        STQ_RETURN_IF_ERROR(DecodeTick(payload, &recovered_.last_tick));
        break;
      }
      default:
        return Status::Corruption("unexpected record type in WAL");
    }
  }
  STQ_RETURN_IF_ERROR(reader.Close());

  recovered_.objects.clear();
  recovered_.queries.clear();
  recovered_.commits.clear();
  for (auto& [id, o] : objects) recovered_.objects.push_back(o);
  for (auto& [id, q] : queries) recovered_.queries.push_back(q);
  for (auto& [id, c] : commits) recovered_.commits.push_back(std::move(c));
  return Status::OK();
}

Status Repository::AppendRecord(RecordType type, const std::string& payload) {
  if (!open_) return Status::FailedPrecondition("repository not open");
  return wal_.Append(static_cast<uint8_t>(type), payload);
}

Status Repository::LogObjectUpsert(const PersistedObject& o) {
  std::string payload;
  EncodeObjectUpsert(o, &payload);
  return AppendRecord(RecordType::kObjectUpsert, payload);
}

Status Repository::LogObjectRemove(ObjectId id) {
  std::string payload;
  EncodeObjectRemove(id, &payload);
  return AppendRecord(RecordType::kObjectRemove, payload);
}

Status Repository::LogQueryRegister(const PersistedQuery& q) {
  std::string payload;
  EncodeQueryRegister(q, &payload);
  return AppendRecord(RecordType::kQueryRegister, payload);
}

Status Repository::LogQueryMoveRect(QueryId id, const Rect& region) {
  std::string payload;
  EncodeQueryMoveRect(id, region, &payload);
  return AppendRecord(RecordType::kQueryMoveRect, payload);
}

Status Repository::LogQueryMoveCenter(QueryId id, const Point& center) {
  std::string payload;
  EncodeQueryMoveCenter(id, center, &payload);
  return AppendRecord(RecordType::kQueryMoveCenter, payload);
}

Status Repository::LogQueryUnregister(QueryId id) {
  std::string payload;
  EncodeQueryUnregister(id, &payload);
  return AppendRecord(RecordType::kQueryUnregister, payload);
}

Status Repository::LogCommit(QueryId id, const std::vector<ObjectId>& answer) {
  PersistedCommit c;
  c.id = id;
  c.answer = answer;
  std::sort(c.answer.begin(), c.answer.end());
  std::string payload;
  EncodeCommit(c, &payload);
  return AppendRecord(RecordType::kCommit, payload);
}

Status Repository::LogTick(Timestamp t) {
  std::string payload;
  EncodeTick(t, &payload);
  return AppendRecord(RecordType::kTick, payload);
}

Status Repository::Sync() {
  if (!open_) return Status::FailedPrecondition("repository not open");
  return wal_.Sync();
}

Status Repository::Checkpoint(const PersistedState& state) {
  if (!open_) return Status::FailedPrecondition("repository not open");
  STQ_RETURN_IF_ERROR(WriteSnapshot(snapshot_path_, state));
  STQ_RETURN_IF_ERROR(wal_.Close());
  STQ_RETURN_IF_ERROR(wal_.Open(wal_path_, /*truncate=*/true));
  recovered_ = state;
  return Status::OK();
}

Status Repository::Close() {
  if (!open_) return Status::OK();
  open_ = false;
  return wal_.Close();
}

Result<TickResult> RestoreProcessor(const PersistedState& state,
                                    QueryProcessor* processor) {
  for (const PersistedObject& o : state.objects) {
    Status s = o.predictive
                   ? processor->UpsertPredictiveObject(o.id, o.loc, o.vel, o.t)
                   : processor->UpsertObject(o.id, o.loc, o.t);
    if (!s.ok()) return s;
  }
  for (const PersistedQuery& q : state.queries) {
    Status s;
    switch (q.kind) {
      case QueryKind::kRange:
        s = processor->RegisterRangeQuery(q.id, q.region);
        break;
      case QueryKind::kKnn:
        s = processor->RegisterKnnQuery(q.id, q.center, q.k);
        break;
      case QueryKind::kPredictiveRange:
        s = processor->RegisterPredictiveQuery(q.id, q.region, q.t_from,
                                               q.t_to);
        break;
      case QueryKind::kCircleRange:
        s = processor->RegisterCircleQuery(q.id, q.center, q.radius);
        break;
    }
    if (!s.ok()) return s;
  }
  return processor->EvaluateTick(state.last_tick);
}

}  // namespace stq
