#include "stq/storage/repository.h"

#include <algorithm>
#include <map>
#include <utility>

namespace stq {

Repository::Repository(std::string dir, Env* env)
    : dir_(std::move(dir)),
      snapshot_path_(dir_ + "/SNAPSHOT"),
      wal_path_(dir_ + "/WAL"),
      env_(env != nullptr ? env : Env::Default()) {}

Repository::~Repository() {
  // Destruction without Close() models a crash: drop the handle without
  // surfacing errors. Only synced data is owed to anyone.
  wal_.Abandon();
}

Status Repository::Open() {
  if (open_) return Status::FailedPrecondition("repository already open");
  STQ_RETURN_IF_ERROR(env_->CreateDir(dir_));
  // A SNAPSHOT.tmp is debris from a checkpoint that crashed before its
  // rename; the real SNAPSHOT is still authoritative.
  const std::string tmp = snapshot_path_ + ".tmp";
  if (env_->FileExists(tmp)) (void)env_->RemoveFile(tmp);

  STQ_RETURN_IF_ERROR(ReadSnapshot(env_, snapshot_path_, &recovered_, &epoch_));
  bool reuse_wal = false;
  STQ_RETURN_IF_ERROR(ReplayWal(&reuse_wal));
  if (reuse_wal) {
    STQ_RETURN_IF_ERROR(wal_.Open(env_, wal_path_, /*truncate=*/false));
  } else {
    Status s = CreateWal();
    if (!s.ok()) {
      wal_.Abandon();
      return s;
    }
  }
  poisoned_ = Status::OK();
  open_ = true;
  return Status::OK();
}

Status Repository::CreateWal() {
  STQ_RETURN_IF_ERROR(wal_.Open(env_, wal_path_, /*truncate=*/true));
  std::string payload;
  EncodeEpoch(epoch_, &payload);
  STQ_RETURN_IF_ERROR(
      wal_.Append(static_cast<uint8_t>(RecordType::kEpoch), payload));
  STQ_RETURN_IF_ERROR(wal_.Sync());
  // Make the WAL's existence durable: a snapshot whose WAL vanished in a
  // crash recovers fine, but a durable WAL must not point at a name that
  // was never dir-synced.
  return env_->SyncDir(dir_);
}

Status Repository::WalCorruption(const LogReader& reader,
                                 const std::string& what) {
  return Status::Corruption(
      "WAL corruption in " + wal_path_ + " at record #" +
      std::to_string(reader.records_read() == 0 ? 0
                                                : reader.records_read() - 1) +
      " (offset " + std::to_string(reader.last_record_offset()) + "): " +
      what);
}

Status Repository::ReplayWal(bool* reuse_wal) {
  *reuse_wal = false;
  if (!env_->FileExists(wal_path_)) return Status::OK();  // fresh start

  LogReader reader;
  STQ_RETURN_IF_ERROR(reader.Open(env_, wal_path_));

  // Replay onto id-keyed maps so later records supersede earlier ones.
  std::map<ObjectId, PersistedObject> objects;
  std::map<QueryId, PersistedQuery> queries;
  std::map<QueryId, PersistedCommit> commits;
  for (const PersistedObject& o : recovered_.objects) objects[o.id] = o;
  for (const PersistedQuery& q : recovered_.queries) queries[q.id] = q;
  for (const PersistedCommit& c : recovered_.commits) commits[c.id] = c;
  Timestamp last_tick = recovered_.last_tick;

  bool first = true;
  for (;;) {
    uint8_t type = 0;
    std::string payload;
    bool eof = false;
    STQ_RETURN_IF_ERROR(reader.ReadRecord(&type, &payload, &eof));
    if (eof) break;
    if (first) {
      first = false;
      if (static_cast<RecordType>(type) == RecordType::kEpoch) {
        uint64_t wal_epoch = 0;
        Status s = DecodeEpoch(payload, &wal_epoch);
        if (!s.ok()) return WalCorruption(reader, s.message());
        if (wal_epoch != epoch_) {
          // A leftover from before the last durable checkpoint (crash
          // between the snapshot rename and the WAL reset). Everything
          // in it is already reflected in the snapshot: ignore it.
          return reader.Close();
        }
        continue;
      }
      if (epoch_ != 0) {
        // Headerless (legacy) WAL against an epoch'd snapshot: stale.
        return reader.Close();
      }
    } else if (static_cast<RecordType>(type) == RecordType::kEpoch) {
      return WalCorruption(reader, "epoch record not at start of log");
    }
    switch (static_cast<RecordType>(type)) {
      case RecordType::kObjectUpsert: {
        PersistedObject o;
        Status s = DecodeObjectUpsert(payload, &o);
        if (!s.ok()) return WalCorruption(reader, s.message());
        objects[o.id] = o;
        break;
      }
      case RecordType::kObjectRemove: {
        ObjectId id = 0;
        Status s = DecodeObjectRemove(payload, &id);
        if (!s.ok()) return WalCorruption(reader, s.message());
        objects.erase(id);
        break;
      }
      case RecordType::kQueryRegister: {
        PersistedQuery q;
        Status s = DecodeQueryRegister(payload, &q);
        if (!s.ok()) return WalCorruption(reader, s.message());
        queries[q.id] = q;
        break;
      }
      case RecordType::kQueryMoveRect: {
        QueryId id = 0;
        Rect region;
        Status s = DecodeQueryMoveRect(payload, &id, &region);
        if (!s.ok()) return WalCorruption(reader, s.message());
        auto it = queries.find(id);
        if (it != queries.end()) it->second.region = region;
        break;
      }
      case RecordType::kQueryMoveCenter: {
        QueryId id = 0;
        Point center;
        Status s = DecodeQueryMoveCenter(payload, &id, &center);
        if (!s.ok()) return WalCorruption(reader, s.message());
        auto it = queries.find(id);
        if (it != queries.end()) it->second.center = center;
        break;
      }
      case RecordType::kQueryUnregister: {
        QueryId id = 0;
        Status s = DecodeQueryUnregister(payload, &id);
        if (!s.ok()) return WalCorruption(reader, s.message());
        queries.erase(id);
        commits.erase(id);
        break;
      }
      case RecordType::kCommit: {
        PersistedCommit c;
        Status s = DecodeCommit(payload, &c);
        if (!s.ok()) return WalCorruption(reader, s.message());
        commits[c.id] = std::move(c);
        break;
      }
      case RecordType::kTick: {
        Status s = DecodeTick(payload, &last_tick);
        if (!s.ok()) return WalCorruption(reader, s.message());
        break;
      }
      default:
        return WalCorruption(reader, "unexpected record type " +
                                         std::to_string(type));
    }
  }
  const uint64_t valid = reader.valid_offset();
  const uint64_t records = reader.records_read();
  STQ_RETURN_IF_ERROR(reader.Close());

  // Trim a torn tail (crash mid-append) so the next append cannot land
  // on top of a persisted partial frame and corrupt the log for the
  // *next* recovery.
  uint64_t size = 0;
  STQ_RETURN_IF_ERROR(env_->GetFileSize(wal_path_, &size));
  if (size > valid) {
    STQ_RETURN_IF_ERROR(env_->TruncateFile(wal_path_, valid));
  }

  recovered_.objects.clear();
  recovered_.queries.clear();
  recovered_.commits.clear();
  for (auto& [id, o] : objects) recovered_.objects.push_back(o);
  for (auto& [id, q] : queries) recovered_.queries.push_back(q);
  for (auto& [id, c] : commits) recovered_.commits.push_back(std::move(c));
  recovered_.last_tick = last_tick;

  // An empty (or fully torn) WAL is recreated with a synced epoch
  // header; one with at least one valid record is appended to.
  *reuse_wal = records > 0;
  return Status::OK();
}

Status Repository::AppendRecord(RecordType type, const std::string& payload) {
  if (!open_) return Status::FailedPrecondition("repository not open");
  if (!poisoned_.ok()) return poisoned_;
  return wal_.Append(static_cast<uint8_t>(type), payload);
}

Status Repository::LogObjectUpsert(const PersistedObject& o) {
  std::string payload;
  EncodeObjectUpsert(o, &payload);
  return AppendRecord(RecordType::kObjectUpsert, payload);
}

Status Repository::LogObjectRemove(ObjectId id) {
  std::string payload;
  EncodeObjectRemove(id, &payload);
  return AppendRecord(RecordType::kObjectRemove, payload);
}

Status Repository::LogQueryRegister(const PersistedQuery& q) {
  std::string payload;
  EncodeQueryRegister(q, &payload);
  return AppendRecord(RecordType::kQueryRegister, payload);
}

Status Repository::LogQueryMoveRect(QueryId id, const Rect& region) {
  std::string payload;
  EncodeQueryMoveRect(id, region, &payload);
  return AppendRecord(RecordType::kQueryMoveRect, payload);
}

Status Repository::LogQueryMoveCenter(QueryId id, const Point& center) {
  std::string payload;
  EncodeQueryMoveCenter(id, center, &payload);
  return AppendRecord(RecordType::kQueryMoveCenter, payload);
}

Status Repository::LogQueryUnregister(QueryId id) {
  std::string payload;
  EncodeQueryUnregister(id, &payload);
  return AppendRecord(RecordType::kQueryUnregister, payload);
}

Status Repository::LogCommit(QueryId id, const std::vector<ObjectId>& answer) {
  PersistedCommit c;
  c.id = id;
  c.answer = answer;
  std::sort(c.answer.begin(), c.answer.end());
  std::string payload;
  EncodeCommit(c, &payload);
  return AppendRecord(RecordType::kCommit, payload);
}

Status Repository::LogTick(Timestamp t) {
  std::string payload;
  EncodeTick(t, &payload);
  return AppendRecord(RecordType::kTick, payload);
}

Status Repository::Sync() {
  if (!open_) return Status::FailedPrecondition("repository not open");
  if (!poisoned_.ok()) return poisoned_;
  return wal_.Sync();
}

Status Repository::Poison(const Status& s) {
  poisoned_ = s;
  wal_.Abandon();
  return s;
}

Status Repository::Checkpoint(const PersistedState& state) {
  if (!open_) return Status::FailedPrecondition("repository not open");
  if (!poisoned_.ok()) return poisoned_;
  if (!wal_.healthy()) return wal_.error();

  const uint64_t next_epoch = epoch_ + 1;
  const std::string tmp = snapshot_path_ + ".tmp";

  // (1) Write the new snapshot beside the old one. Abortable: on failure
  // the old SNAPSHOT+WAL pair is untouched and logging can continue.
  STQ_RETURN_IF_ERROR(WriteSnapshotFile(env_, tmp, state, next_epoch));

  // (2) Atomically swap it in. Still abortable: a failed rename leaves
  // the old snapshot in place.
  Status s = env_->RenameFile(tmp, snapshot_path_);
  if (!s.ok()) {
    (void)env_->RemoveFile(tmp);
    return s;
  }

  // (3) Point of no return. The new snapshot is now visible (and after
  // this sync, durable). If we cannot complete the switch we must stop
  // accepting writes: continuing to ack onto the old-epoch WAL would
  // lose them at the next recovery, which will prefer the new snapshot
  // and discard the stale WAL.
  s = env_->SyncDir(dir_);
  if (!s.ok()) return Poison(s);

  s = wal_.Close();
  if (!s.ok()) return Poison(s);

  epoch_ = next_epoch;
  s = CreateWal();
  if (!s.ok()) return Poison(s);

  recovered_ = state;
  return Status::OK();
}

Status Repository::Close() {
  if (!open_) return Status::OK();
  open_ = false;
  if (!poisoned_.ok()) {
    wal_.Abandon();
    return poisoned_;
  }
  return wal_.Close();
}

Result<TickResult> RestoreProcessor(const PersistedState& state,
                                    QueryProcessor* processor) {
  for (const PersistedObject& o : state.objects) {
    Status s = o.predictive
                   ? processor->UpsertPredictiveObject(o.id, o.loc, o.vel, o.t)
                   : processor->UpsertObject(o.id, o.loc, o.t);
    if (!s.ok()) return s;
  }
  for (const PersistedQuery& q : state.queries) {
    Status s;
    switch (q.kind) {
      case QueryKind::kRange:
        s = processor->RegisterRangeQuery(q.id, q.region);
        break;
      case QueryKind::kKnn:
        s = processor->RegisterKnnQuery(q.id, q.center, q.k);
        break;
      case QueryKind::kPredictiveRange:
        s = processor->RegisterPredictiveQuery(q.id, q.region, q.t_from,
                                               q.t_to);
        break;
      case QueryKind::kCircleRange:
        s = processor->RegisterCircleQuery(q.id, q.center, q.radius);
        break;
    }
    if (!s.ok()) return s;
  }
  return processor->EvaluateTick(state.last_tick);
}

}  // namespace stq
