// Env: the I/O abstraction every storage-layer byte passes through.
//
// All file access in stq/storage (WAL, snapshots, repository, workload
// traces) goes through an Env so that tests can substitute a
// FaultInjectionEnv (fault_env.h) and exercise the failure paths —
// failed or torn writes, lost unsynced data, crashes between a rename
// and the directory sync — that a real filesystem only produces when
// the machine dies. The production implementation is PosixEnv
// (posix_env.cc), the only file in the library allowed to call raw
// fopen/fsync/rename/truncate (CI greps for violations).
//
// Durability contract of the interface (what PosixEnv guarantees and
// FaultInjectionEnv simulates):
//   - WritableFile::Append buffers; bytes are not durable until Sync.
//   - WritableFile::Sync returns only after the file's data is durable.
//   - Creating, renaming, or removing a file makes the *name* change
//     durable only after SyncDir on the parent directory.

#ifndef STQ_STORAGE_ENV_H_
#define STQ_STORAGE_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "stq/common/status.h"

namespace stq {

// An append-only file handle. Not thread-safe.
class WritableFile {
 public:
  WritableFile() = default;
  virtual ~WritableFile() = default;

  WritableFile(const WritableFile&) = delete;
  WritableFile& operator=(const WritableFile&) = delete;

  virtual Status Append(const char* data, size_t n) = 0;
  Status Append(const std::string& data) {
    return Append(data.data(), data.size());
  }

  // Pushes user-space buffers to the OS (no durability guarantee).
  virtual Status Flush() = 0;

  // Flush + fsync: all appended bytes are durable on OK return.
  virtual Status Sync() = 0;

  virtual Status Close() = 0;
};

// A read-once-front-to-back file handle. Not thread-safe.
class SequentialFile {
 public:
  SequentialFile() = default;
  virtual ~SequentialFile() = default;

  SequentialFile(const SequentialFile&) = delete;
  SequentialFile& operator=(const SequentialFile&) = delete;

  // Reads up to `n` bytes into *out (replaced, not appended). Fewer than
  // `n` bytes — including zero — means end of file was reached.
  virtual Status Read(size_t n, std::string* out) = 0;
};

class Env {
 public:
  Env() = default;
  virtual ~Env() = default;

  Env(const Env&) = delete;
  Env& operator=(const Env&) = delete;

  // The process-wide POSIX environment (never null, never destroyed).
  static Env* Default();

  // Opens `path` for appending; `truncate` discards existing contents.
  // The file is created if missing (name durable after SyncDir).
  virtual Status NewWritableFile(const std::string& path, bool truncate,
                                 std::unique_ptr<WritableFile>* file) = 0;

  virtual Status NewSequentialFile(const std::string& path,
                                   std::unique_ptr<SequentialFile>* file) = 0;

  // Atomically replaces `to` with `from` (durable after SyncDir).
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;

  virtual Status RemoveFile(const std::string& path) = 0;

  // Truncates `path` to `size` bytes (must be <= current size).
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;

  // fsync of the directory itself: makes prior create/rename/remove of
  // entries in `dir` durable.
  virtual Status SyncDir(const std::string& dir) = 0;

  // Creates `dir`; succeeds if it already exists.
  virtual Status CreateDir(const std::string& dir) = 0;

  // Entry names (not paths) in `dir`, excluding "." and "..", sorted.
  virtual Status ListDir(const std::string& dir,
                         std::vector<std::string>* names) = 0;

  virtual bool FileExists(const std::string& path) = 0;

  virtual Status GetFileSize(const std::string& path, uint64_t* size) = 0;
};

// "/a/b/c" -> "/a/b", "c" -> "." (the parent directory of `path`).
std::string DirName(const std::string& path);

}  // namespace stq

#endif  // STQ_STORAGE_ENV_H_
