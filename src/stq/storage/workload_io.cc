#include "stq/storage/workload_io.h"

#include "stq/storage/coding.h"
#include "stq/storage/wal.h"

namespace stq {

namespace {

enum class WorkloadRecord : uint8_t {
  kHeader = 1,       // tick_seconds, #initial objects, #initial queries, #ticks
  kInitialObject = 2,
  kInitialQuery = 3,
  kTickStart = 4,    // tick time
  kTickObject = 5,
  kTickQuery = 6,
};

void EncodeObjectReport(const ObjectReport& r, std::string* out) {
  PutFixed64(out, r.id);
  PutDouble(out, r.loc.x);
  PutDouble(out, r.loc.y);
  PutDouble(out, r.vel.vx);
  PutDouble(out, r.vel.vy);
  PutDouble(out, r.t);
}

bool DecodeObjectReport(const std::string& payload, ObjectReport* r) {
  size_t offset = 0;
  return GetFixed64(payload, &offset, &r->id) &&
         GetDouble(payload, &offset, &r->loc.x) &&
         GetDouble(payload, &offset, &r->loc.y) &&
         GetDouble(payload, &offset, &r->vel.vx) &&
         GetDouble(payload, &offset, &r->vel.vy) &&
         GetDouble(payload, &offset, &r->t);
}

void EncodeQueryReport(const QueryRegionReport& q, std::string* out) {
  PutFixed64(out, q.id);
  PutDouble(out, q.region.min_x);
  PutDouble(out, q.region.min_y);
  PutDouble(out, q.region.max_x);
  PutDouble(out, q.region.max_y);
  PutDouble(out, q.t);
}

bool DecodeQueryReport(const std::string& payload, QueryRegionReport* q) {
  size_t offset = 0;
  return GetFixed64(payload, &offset, &q->id) &&
         GetDouble(payload, &offset, &q->region.min_x) &&
         GetDouble(payload, &offset, &q->region.min_y) &&
         GetDouble(payload, &offset, &q->region.max_x) &&
         GetDouble(payload, &offset, &q->region.max_y) &&
         GetDouble(payload, &offset, &q->t);
}

}  // namespace

Status SaveWorkload(const std::string& path, const Workload& workload,
                    Env* env) {
  if (env == nullptr) env = Env::Default();
  const std::string tmp = path + ".tmp";
  LogWriter writer;
  STQ_RETURN_IF_ERROR(writer.Open(env, tmp, /*truncate=*/true));

  std::string payload;
  PutDouble(&payload, workload.tick_seconds());
  PutFixed64(&payload, workload.initial_objects().size());
  PutFixed64(&payload, workload.initial_queries().size());
  PutFixed64(&payload, workload.ticks().size());
  STQ_RETURN_IF_ERROR(writer.Append(
      static_cast<uint8_t>(WorkloadRecord::kHeader), payload));

  for (const ObjectReport& r : workload.initial_objects()) {
    payload.clear();
    EncodeObjectReport(r, &payload);
    STQ_RETURN_IF_ERROR(writer.Append(
        static_cast<uint8_t>(WorkloadRecord::kInitialObject), payload));
  }
  for (const QueryRegionReport& q : workload.initial_queries()) {
    payload.clear();
    EncodeQueryReport(q, &payload);
    STQ_RETURN_IF_ERROR(writer.Append(
        static_cast<uint8_t>(WorkloadRecord::kInitialQuery), payload));
  }
  for (const WorkloadTick& tick : workload.ticks()) {
    payload.clear();
    PutDouble(&payload, tick.time);
    STQ_RETURN_IF_ERROR(writer.Append(
        static_cast<uint8_t>(WorkloadRecord::kTickStart), payload));
    for (const ObjectReport& r : tick.object_reports) {
      payload.clear();
      EncodeObjectReport(r, &payload);
      STQ_RETURN_IF_ERROR(writer.Append(
          static_cast<uint8_t>(WorkloadRecord::kTickObject), payload));
    }
    for (const QueryRegionReport& q : tick.query_moves) {
      payload.clear();
      EncodeQueryReport(q, &payload);
      STQ_RETURN_IF_ERROR(writer.Append(
          static_cast<uint8_t>(WorkloadRecord::kTickQuery), payload));
    }
  }
  STQ_RETURN_IF_ERROR(writer.Sync());
  STQ_RETURN_IF_ERROR(writer.Close());
  Status s = env->RenameFile(tmp, path);
  if (!s.ok()) {
    (void)env->RemoveFile(tmp);
    return s;
  }
  return env->SyncDir(DirName(path));
}

Result<Workload> LoadWorkload(const std::string& path, Env* env) {
  LogReader reader;
  STQ_RETURN_IF_ERROR(reader.Open(env, path));

  double tick_seconds = 0.0;
  uint64_t expect_objects = 0, expect_queries = 0, expect_ticks = 0;
  bool saw_header = false;

  std::vector<ObjectReport> initial_objects;
  std::vector<QueryRegionReport> initial_queries;
  std::vector<WorkloadTick> ticks;

  for (;;) {
    uint8_t type = 0;
    std::string payload;
    bool eof = false;
    STQ_RETURN_IF_ERROR(reader.ReadRecord(&type, &payload, &eof));
    if (eof) break;
    switch (static_cast<WorkloadRecord>(type)) {
      case WorkloadRecord::kHeader: {
        size_t offset = 0;
        if (!GetDouble(payload, &offset, &tick_seconds) ||
            !GetFixed64(payload, &offset, &expect_objects) ||
            !GetFixed64(payload, &offset, &expect_queries) ||
            !GetFixed64(payload, &offset, &expect_ticks)) {
          return Status::Corruption("malformed workload header");
        }
        saw_header = true;
        break;
      }
      case WorkloadRecord::kInitialObject: {
        ObjectReport r;
        if (!DecodeObjectReport(payload, &r)) {
          return Status::Corruption("malformed initial object record");
        }
        initial_objects.push_back(r);
        break;
      }
      case WorkloadRecord::kInitialQuery: {
        QueryRegionReport q;
        if (!DecodeQueryReport(payload, &q)) {
          return Status::Corruption("malformed initial query record");
        }
        initial_queries.push_back(q);
        break;
      }
      case WorkloadRecord::kTickStart: {
        WorkloadTick tick;
        size_t offset = 0;
        if (!GetDouble(payload, &offset, &tick.time)) {
          return Status::Corruption("malformed tick record");
        }
        ticks.push_back(std::move(tick));
        break;
      }
      case WorkloadRecord::kTickObject: {
        if (ticks.empty()) return Status::Corruption("tick record before tick");
        ObjectReport r;
        if (!DecodeObjectReport(payload, &r)) {
          return Status::Corruption("malformed tick object record");
        }
        ticks.back().object_reports.push_back(r);
        break;
      }
      case WorkloadRecord::kTickQuery: {
        if (ticks.empty()) return Status::Corruption("tick record before tick");
        QueryRegionReport q;
        if (!DecodeQueryReport(payload, &q)) {
          return Status::Corruption("malformed tick query record");
        }
        ticks.back().query_moves.push_back(q);
        break;
      }
      default:
        return Status::Corruption("unknown workload record type");
    }
  }
  STQ_RETURN_IF_ERROR(reader.Close());

  if (!saw_header) return Status::Corruption("workload file has no header");
  if (initial_objects.size() != expect_objects ||
      initial_queries.size() != expect_queries ||
      ticks.size() != expect_ticks) {
    return Status::Corruption("workload file is truncated");
  }
  return Workload::FromParts(std::move(initial_objects),
                             std::move(initial_queries), std::move(ticks),
                             tick_seconds);
}

}  // namespace stq
