// PersistentServer: a location-aware server with a durable repository.
//
// Combines stq::Server with stq::Repository to play the full role the
// paper assigns to its Shore-based storage manager: every accepted report
// is logged before it is acknowledged, committed answers are persisted,
// and after a crash Open() rebuilds the server — objects, queries, query
// -> client bindings, committed answers, and the last evaluation time —
// so that reconnecting clients recover through the usual committed-diff
// protocol as if the outage had been theirs.
//
// Client channels are transient: after recovery every known client is
// attached in the disconnected state and resynchronizes via
// ReconnectClient.
//
// Failure model: when the log cannot accept a record (disk full, torn
// write, failed sync) the mutation is refused and the server enters the
// degraded() state — it will not acknowledge reports it cannot make
// durable, and Tick() stops delivering answers. The owner decides
// whether to crash, alert, or fail over; the one thing a degraded server
// never does is lie.
//
// Concurrency contract: externally synchronized. One thread drives the
// ingest/tick/checkpoint API (the WAL append order IS the recovery
// order, so interleaving callers would scramble the log); internal
// parallelism stays behind ShardedEngine's fork/join (see
// sharded_server.h). Hence no stq::Mutex members here — a concurrent
// facade belongs in front of this class, not inside it. See DESIGN.md,
// "Static analysis & concurrency contracts".

#ifndef STQ_STORAGE_PERSISTENT_SERVER_H_
#define STQ_STORAGE_PERSISTENT_SERVER_H_

#include <memory>
#include <string>
#include <vector>

#include "stq/core/server.h"
#include "stq/core/session.h"
#include "stq/storage/env.h"
#include "stq/storage/repository.h"

namespace stq {

// The full durable state of `server`, sorted by id — what a checkpoint
// writes, and what crash tests compare against an oracle.
PersistedState CapturePersistedState(const Server& server);

class PersistentServer {
 public:
  struct Options {
    Server::Options server;
    std::string dir;  // repository directory (created if missing)
    // fsync the WAL at the end of every Tick().
    bool sync_every_tick = true;
    // I/O environment; nullptr means Env::Default().
    Env* env = nullptr;
  };

  explicit PersistentServer(const Options& options);

  // Recovers state from the repository (fresh start when empty) and
  // replays it into the server. Must be called exactly once before use.
  Status Open();

  Server& server() { return *server_; }
  const Server& server() const { return *server_; }
  QueryProcessor& processor() { return server_->processor(); }

  // True once an I/O failure has made further logging unsafe. A degraded
  // server refuses all logged mutations with FailedPrecondition and
  // returns empty deliveries from Tick(); `error()` is the root cause.
  bool degraded() const { return !repository_.healthy(); }
  Status error() const { return repository_.error(); }

  // --- Logged mutations (mirror Server's API) -------------------------------

  Status ReportObject(ObjectId id, const Point& loc, Timestamp t);
  Status ReportPredictiveObject(ObjectId id, const Point& loc,
                                const Velocity& vel, Timestamp t);
  Status RemoveObject(ObjectId id);

  Status AttachClient(ClientId cid) { return server_->AttachClient(cid); }
  Status DisconnectClient(ClientId cid) {
    return server_->DisconnectClient(cid);
  }
  Result<Server::Delivery> ReconnectClient(ClientId cid);

  Status RegisterRangeQuery(QueryId qid, ClientId cid, const Rect& region);
  Status RegisterKnnQuery(QueryId qid, ClientId cid, const Point& center,
                          int k);
  Status RegisterCircleQuery(QueryId qid, ClientId cid, const Point& center,
                             double radius);
  Status RegisterPredictiveQuery(QueryId qid, ClientId cid, const Rect& region,
                                 double t_from, double t_to);
  Status MoveRangeQuery(QueryId qid, const Rect& region);
  Status MoveKnnQuery(QueryId qid, const Point& center);
  Status MoveCircleQuery(QueryId qid, const Point& center);
  Status MovePredictiveQuery(QueryId qid, const Rect& region);
  Status CommitQuery(QueryId qid);
  Status UnregisterQuery(QueryId qid);

  // Evaluates one period, logs the tick time, and (by default) syncs the
  // WAL. If persisting the tick fails the deliveries are suppressed
  // (clients must not see answers the log cannot back) and the server
  // goes degraded.
  std::vector<Server::Delivery> Tick(Timestamp now);

  // Writes a snapshot of the full current state and truncates the WAL.
  Status Checkpoint();

  // The state a checkpoint would persist right now.
  PersistedState CaptureState() const;

  Status Close();

  // Fronts this server with the session layer (stq::SessionManager), so
  // resyncs flow through the logged ReconnectClient path and demotions
  // through the logged disconnect. The adapter holds no state: sessions
  // survive whatever the repository survives.
  class SessionBackendAdapter final : public SessionBackend {
   public:
    explicit SessionBackendAdapter(PersistentServer* ps) : ps_(ps) {}
    Server& server() override { return ps_->server(); }
    std::vector<Server::Delivery> Tick(Timestamp now) override {
      return ps_->Tick(now);
    }
    Result<Server::Delivery> ReconnectClient(ClientId cid) override {
      return ps_->ReconnectClient(cid);
    }
    Status DisconnectClient(ClientId cid) override {
      return ps_->DisconnectClient(cid);
    }

   private:
    PersistentServer* ps_;
  };

 private:
  // Refuses mutations before the in-memory server is touched when the
  // repository can no longer make them durable.
  Status GuardWritable() const;
  // Logs the current answer of `qid` as committed, mirroring the
  // server-side commit that just happened.
  Status LogCommitOf(QueryId qid);

  Options options_;
  Repository repository_;
  std::unique_ptr<Server> server_;
  bool open_ = false;
};

}  // namespace stq

#endif  // STQ_STORAGE_PERSISTENT_SERVER_H_
