#include "stq/storage/wal.h"

#include <unistd.h>

#include <limits>

#include "stq/common/crc32.h"
#include "stq/storage/coding.h"

namespace stq {

namespace {
// Sanity cap: no single record in this system approaches this size; a
// larger length field means a corrupt frame, not a huge record.
constexpr uint32_t kMaxPayload = 64u << 20;  // 64 MiB
}  // namespace

LogWriter::~LogWriter() {
  if (file_ != nullptr) Close();
}

Status LogWriter::Open(const std::string& path, bool truncate) {
  if (file_ != nullptr) return Status::FailedPrecondition("already open");
  file_ = std::fopen(path.c_str(), truncate ? "wb" : "ab");
  if (file_ == nullptr) {
    return Status::IOError("cannot open log for writing: " + path);
  }
  path_ = path;
  return Status::OK();
}

Status LogWriter::Append(uint8_t type, const std::string& payload) {
  if (file_ == nullptr) return Status::FailedPrecondition("log not open");
  if (payload.size() > kMaxPayload) {
    return Status::InvalidArgument("record payload too large");
  }
  std::string body;
  body.reserve(1 + payload.size());
  PutByte(&body, type);
  body.append(payload);

  std::string frame;
  frame.reserve(8 + body.size());
  PutFixed32(&frame, Crc32c(body.data(), body.size()));
  PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  frame.append(body);

  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) {
    return Status::IOError("short write to log: " + path_);
  }
  return Status::OK();
}

Status LogWriter::Sync() {
  if (file_ == nullptr) return Status::FailedPrecondition("log not open");
  if (std::fflush(file_) != 0) {
    return Status::IOError("fflush failed: " + path_);
  }
  if (fsync(fileno(file_)) != 0) {
    return Status::IOError("fsync failed: " + path_);
  }
  return Status::OK();
}

Status LogWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return Status::IOError("fclose failed: " + path_);
  return Status::OK();
}

LogReader::~LogReader() {
  if (file_ != nullptr) Close();
}

Status LogReader::Open(const std::string& path) {
  if (file_ != nullptr) return Status::FailedPrecondition("already open");
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    return Status::IOError("cannot open log for reading: " + path);
  }
  path_ = path;
  return Status::OK();
}

Status LogReader::ReadRecord(uint8_t* type, std::string* payload, bool* eof) {
  *eof = false;
  if (file_ == nullptr) return Status::FailedPrecondition("log not open");

  unsigned char header[8];
  const size_t got = std::fread(header, 1, sizeof(header), file_);
  if (got == 0) {
    *eof = true;
    return Status::OK();
  }
  if (got < sizeof(header)) {
    // Torn header from a crash mid-append: clean end of log.
    *eof = true;
    return Status::OK();
  }
  const uint32_t crc = static_cast<uint32_t>(header[0]) |
                       (static_cast<uint32_t>(header[1]) << 8) |
                       (static_cast<uint32_t>(header[2]) << 16) |
                       (static_cast<uint32_t>(header[3]) << 24);
  const uint32_t len = static_cast<uint32_t>(header[4]) |
                       (static_cast<uint32_t>(header[5]) << 8) |
                       (static_cast<uint32_t>(header[6]) << 16) |
                       (static_cast<uint32_t>(header[7]) << 24);
  if (len > kMaxPayload) {
    return Status::Corruption("implausible record length in " + path_);
  }
  std::string body(static_cast<size_t>(len) + 1, '\0');
  if (std::fread(body.data(), 1, body.size(), file_) != body.size()) {
    // Torn body: clean end of log.
    *eof = true;
    return Status::OK();
  }
  if (Crc32c(body.data(), body.size()) != crc) {
    return Status::Corruption("checksum mismatch in " + path_);
  }
  *type = static_cast<uint8_t>(body[0]);
  payload->assign(body, 1, len);
  return Status::OK();
}

Status LogReader::Close() {
  if (file_ == nullptr) return Status::OK();
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return Status::IOError("fclose failed: " + path_);
  return Status::OK();
}

}  // namespace stq
