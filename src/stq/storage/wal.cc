#include "stq/storage/wal.h"

#include <limits>

#include "stq/common/check.h"
#include "stq/common/crc32.h"
#include "stq/storage/coding.h"

namespace stq {

namespace {
// Sanity cap: no single record in this system approaches this size; a
// larger length field means a corrupt frame, not a huge record.
constexpr uint32_t kMaxPayload = 64u << 20;  // 64 MiB
}  // namespace

LogWriter::~LogWriter() {
  // Silently dropping buffered data on destruction is how acknowledged
  // writes get lost: require an explicit Close() (whose error the caller
  // saw) or Abandon() (a deliberate crash-path drop) first.
  STQ_DCHECK(file_ == nullptr || !status_.ok())
      << "LogWriter destroyed while open and healthy: " << path_;
  file_.reset();
}

Status LogWriter::Open(Env* env, const std::string& path, bool truncate) {
  if (file_ != nullptr) return Status::FailedPrecondition("already open");
  if (env == nullptr) env = Env::Default();
  STQ_RETURN_IF_ERROR(env->NewWritableFile(path, truncate, &file_));
  path_ = path;
  status_ = Status::OK();
  return Status::OK();
}

Status LogWriter::Append(uint8_t type, const std::string& payload) {
  if (!status_.ok()) return status_;
  if (file_ == nullptr) return Status::FailedPrecondition("log not open");
  if (payload.size() > kMaxPayload) {
    return Status::InvalidArgument("record payload too large");
  }
  std::string body;
  body.reserve(1 + payload.size());
  PutByte(&body, type);
  body.append(payload);

  std::string frame;
  frame.reserve(8 + body.size());
  PutFixed32(&frame, Crc32c(body.data(), body.size()));
  PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  frame.append(body);

  Status s = file_->Append(frame);
  if (!s.ok()) status_ = s;  // a partial frame may be in the file: poison
  return s;
}

Status LogWriter::Sync() {
  if (!status_.ok()) return status_;
  if (file_ == nullptr) return Status::FailedPrecondition("log not open");
  Status s = file_->Sync();
  if (!s.ok()) status_ = s;
  return s;
}

Status LogWriter::Close() {
  if (file_ == nullptr) return status_;
  Status s = file_->Close();
  file_.reset();
  if (!s.ok() && status_.ok()) status_ = s;
  return status_;
}

void LogWriter::Abandon() {
  if (file_ != nullptr) {
    (void)file_->Close();  // best-effort: errors deliberately dropped
    file_.reset();
  }
  if (status_.ok()) status_ = Status::FailedPrecondition("log writer abandoned");
}

LogReader::~LogReader() { file_.reset(); }

Status LogReader::Open(Env* env, const std::string& path) {
  if (file_ != nullptr) return Status::FailedPrecondition("already open");
  if (env == nullptr) env = Env::Default();
  STQ_RETURN_IF_ERROR(env->NewSequentialFile(path, &file_));
  path_ = path;
  offset_ = valid_offset_ = last_record_offset_ = 0;
  records_ = 0;
  return Status::OK();
}

Status LogReader::ReadRecord(uint8_t* type, std::string* payload, bool* eof) {
  *eof = false;
  if (file_ == nullptr) return Status::FailedPrecondition("log not open");

  last_record_offset_ = offset_;
  std::string header;
  STQ_RETURN_IF_ERROR(file_->Read(8, &header));
  if (header.empty()) {
    *eof = true;
    return Status::OK();
  }
  offset_ += header.size();
  if (header.size() < 8) {
    // Torn header from a crash mid-append: clean end of log.
    *eof = true;
    return Status::OK();
  }
  size_t pos = 0;
  uint32_t crc = 0;
  uint32_t len = 0;
  GetFixed32(header, &pos, &crc);
  GetFixed32(header, &pos, &len);
  if (len > kMaxPayload) {
    return Status::Corruption(
        "implausible record length in " + path_ + " at record #" +
        std::to_string(records_) + " (offset " +
        std::to_string(last_record_offset_) + ")");
  }
  std::string body;
  STQ_RETURN_IF_ERROR(file_->Read(static_cast<size_t>(len) + 1, &body));
  offset_ += body.size();
  if (body.size() < static_cast<size_t>(len) + 1) {
    // Torn body: clean end of log.
    *eof = true;
    return Status::OK();
  }
  if (Crc32c(body.data(), body.size()) != crc) {
    return Status::Corruption(
        "checksum mismatch in " + path_ + " at record #" +
        std::to_string(records_) + " (offset " +
        std::to_string(last_record_offset_) + ")");
  }
  *type = static_cast<uint8_t>(body[0]);
  payload->assign(body, 1, len);
  valid_offset_ = offset_;
  ++records_;
  return Status::OK();
}

Status LogReader::Close() {
  file_.reset();
  return Status::OK();
}

}  // namespace stq
