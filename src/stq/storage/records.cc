#include "stq/storage/records.h"

#include "stq/storage/coding.h"

namespace stq {

namespace {
Status Malformed(const char* what) {
  return Status::Corruption(std::string("malformed record payload: ") + what);
}

void EncodeRect(const Rect& r, std::string* out) {
  PutDouble(out, r.min_x);
  PutDouble(out, r.min_y);
  PutDouble(out, r.max_x);
  PutDouble(out, r.max_y);
}

bool DecodeRect(const std::string& src, size_t* offset, Rect* r) {
  return GetDouble(src, offset, &r->min_x) &&
         GetDouble(src, offset, &r->min_y) &&
         GetDouble(src, offset, &r->max_x) &&
         GetDouble(src, offset, &r->max_y);
}
}  // namespace

void EncodeObjectUpsert(const PersistedObject& o, std::string* out) {
  PutFixed64(out, o.id);
  PutDouble(out, o.loc.x);
  PutDouble(out, o.loc.y);
  PutDouble(out, o.vel.vx);
  PutDouble(out, o.vel.vy);
  PutDouble(out, o.t);
  PutByte(out, o.predictive ? 1 : 0);
}

Status DecodeObjectUpsert(const std::string& payload, PersistedObject* o) {
  size_t offset = 0;
  uint8_t predictive = 0;
  if (!GetFixed64(payload, &offset, &o->id) ||
      !GetDouble(payload, &offset, &o->loc.x) ||
      !GetDouble(payload, &offset, &o->loc.y) ||
      !GetDouble(payload, &offset, &o->vel.vx) ||
      !GetDouble(payload, &offset, &o->vel.vy) ||
      !GetDouble(payload, &offset, &o->t) ||
      !GetByte(payload, &offset, &predictive)) {
    return Malformed("object upsert");
  }
  o->predictive = predictive != 0;
  return Status::OK();
}

void EncodeObjectRemove(ObjectId id, std::string* out) { PutFixed64(out, id); }

Status DecodeObjectRemove(const std::string& payload, ObjectId* id) {
  size_t offset = 0;
  if (!GetFixed64(payload, &offset, id)) return Malformed("object remove");
  return Status::OK();
}

void EncodeQueryRegister(const PersistedQuery& q, std::string* out) {
  PutFixed64(out, q.id);
  PutByte(out, static_cast<uint8_t>(q.kind));
  EncodeRect(q.region, out);
  PutDouble(out, q.center.x);
  PutDouble(out, q.center.y);
  PutFixed32(out, static_cast<uint32_t>(q.k));
  PutDouble(out, q.radius);
  PutDouble(out, q.t_from);
  PutDouble(out, q.t_to);
  PutFixed64(out, q.owner);
}

Status DecodeQueryRegister(const std::string& payload, PersistedQuery* q) {
  size_t offset = 0;
  uint8_t kind = 0;
  uint32_t k = 0;
  if (!GetFixed64(payload, &offset, &q->id) ||
      !GetByte(payload, &offset, &kind) ||
      !DecodeRect(payload, &offset, &q->region) ||
      !GetDouble(payload, &offset, &q->center.x) ||
      !GetDouble(payload, &offset, &q->center.y) ||
      !GetFixed32(payload, &offset, &k) ||
      !GetDouble(payload, &offset, &q->radius) ||
      !GetDouble(payload, &offset, &q->t_from) ||
      !GetDouble(payload, &offset, &q->t_to) ||
      !GetFixed64(payload, &offset, &q->owner)) {
    return Malformed("query register");
  }
  if (kind > static_cast<uint8_t>(QueryKind::kCircleRange)) {
    return Malformed("query kind");
  }
  q->kind = static_cast<QueryKind>(kind);
  q->k = static_cast<int>(k);
  return Status::OK();
}

void EncodeQueryMoveRect(QueryId id, const Rect& region, std::string* out) {
  PutFixed64(out, id);
  EncodeRect(region, out);
}

Status DecodeQueryMoveRect(const std::string& payload, QueryId* id,
                           Rect* region) {
  size_t offset = 0;
  if (!GetFixed64(payload, &offset, id) ||
      !DecodeRect(payload, &offset, region)) {
    return Malformed("query move rect");
  }
  return Status::OK();
}

void EncodeQueryMoveCenter(QueryId id, const Point& center, std::string* out) {
  PutFixed64(out, id);
  PutDouble(out, center.x);
  PutDouble(out, center.y);
}

Status DecodeQueryMoveCenter(const std::string& payload, QueryId* id,
                             Point* center) {
  size_t offset = 0;
  if (!GetFixed64(payload, &offset, id) ||
      !GetDouble(payload, &offset, &center->x) ||
      !GetDouble(payload, &offset, &center->y)) {
    return Malformed("query move center");
  }
  return Status::OK();
}

void EncodeQueryUnregister(QueryId id, std::string* out) {
  PutFixed64(out, id);
}

Status DecodeQueryUnregister(const std::string& payload, QueryId* id) {
  size_t offset = 0;
  if (!GetFixed64(payload, &offset, id)) {
    return Malformed("query unregister");
  }
  return Status::OK();
}

void EncodeCommit(const PersistedCommit& c, std::string* out) {
  PutFixed64(out, c.id);
  PutFixed32(out, static_cast<uint32_t>(c.answer.size()));
  for (ObjectId oid : c.answer) PutFixed64(out, oid);
}

Status DecodeCommit(const std::string& payload, PersistedCommit* c) {
  size_t offset = 0;
  uint32_t count = 0;
  if (!GetFixed64(payload, &offset, &c->id) ||
      !GetFixed32(payload, &offset, &count)) {
    return Malformed("commit");
  }
  // Validate the advertised count against the bytes actually present
  // before reserving: a corrupt count of ~2^32 would otherwise attempt a
  // 32 GiB allocation.
  if (!DecodeRemaining(payload, offset, static_cast<size_t>(count) * 8)) {
    return Malformed("commit count");
  }
  c->answer.clear();
  c->answer.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    ObjectId oid = 0;
    if (!GetFixed64(payload, &offset, &oid)) return Malformed("commit body");
    c->answer.push_back(oid);
  }
  return Status::OK();
}

void EncodeTick(Timestamp t, std::string* out) { PutDouble(out, t); }

Status DecodeTick(const std::string& payload, Timestamp* t) {
  size_t offset = 0;
  if (!GetDouble(payload, &offset, t)) return Malformed("tick");
  return Status::OK();
}

void EncodeEpoch(uint64_t epoch, std::string* out) { PutFixed64(out, epoch); }

Status DecodeEpoch(const std::string& payload, uint64_t* epoch) {
  size_t offset = 0;
  if (!GetFixed64(payload, &offset, epoch)) return Malformed("epoch");
  return Status::OK();
}

}  // namespace stq
