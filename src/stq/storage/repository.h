// Repository: durable storage for the location-aware server.
//
// Plays the role the paper assigns to its Shore-based storage manager:
// every accepted report is logged, committed answers are persisted, and
// on restart the server recovers the objects, queries, committed answers,
// and last evaluation time. Layout inside the directory:
//
//   <dir>/SNAPSHOT   last checkpoint (WAL-framed records)
//   <dir>/WAL        records accepted since the checkpoint
//
// Recovery = load SNAPSHOT, replay WAL on top. A torn WAL tail (crash
// mid-append) is tolerated; corruption in the middle is surfaced.

#ifndef STQ_STORAGE_REPOSITORY_H_
#define STQ_STORAGE_REPOSITORY_H_

#include <map>
#include <string>
#include <vector>

#include "stq/common/status.h"
#include "stq/core/query_processor.h"
#include "stq/storage/snapshot.h"
#include "stq/storage/wal.h"

namespace stq {

class Repository {
 public:
  explicit Repository(std::string dir);

  Repository(const Repository&) = delete;
  Repository& operator=(const Repository&) = delete;

  // Loads SNAPSHOT + WAL; after Open() the recovered state is available
  // and the WAL accepts new records.
  Status Open();

  const PersistedState& recovered() const { return recovered_; }

  // --- Logging (call as the server accepts each report) ---------------------

  Status LogObjectUpsert(const PersistedObject& o);
  Status LogObjectRemove(ObjectId id);
  Status LogQueryRegister(const PersistedQuery& q);
  Status LogQueryMoveRect(QueryId id, const Rect& region);
  Status LogQueryMoveCenter(QueryId id, const Point& center);
  Status LogQueryUnregister(QueryId id);
  Status LogCommit(QueryId id, const std::vector<ObjectId>& answer);
  Status LogTick(Timestamp t);
  Status Sync();

  // Writes a fresh SNAPSHOT of `state` and truncates the WAL.
  Status Checkpoint(const PersistedState& state);

  Status Close();

 private:
  Status AppendRecord(RecordType type, const std::string& payload);
  Status ReplayWal();

  std::string dir_;
  std::string snapshot_path_;
  std::string wal_path_;
  LogWriter wal_;
  PersistedState recovered_;
  bool open_ = false;
};

// Applies a recovered state onto a fresh QueryProcessor: objects are
// upserted and queries re-registered, then one EvaluateTick at
// state.last_tick rebuilds the current answers. Returns the tick result
// (the rebuilt answers as positive updates).
Result<TickResult> RestoreProcessor(const PersistedState& state,
                                    QueryProcessor* processor);

}  // namespace stq

#endif  // STQ_STORAGE_REPOSITORY_H_
