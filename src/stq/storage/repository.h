// Repository: durable storage for the location-aware server.
//
// Plays the role the paper assigns to its Shore-based storage manager:
// every accepted report is logged, committed answers are persisted, and
// on restart the server recovers the objects, queries, committed answers,
// and last evaluation time. Layout inside the directory:
//
//   <dir>/SNAPSHOT   last checkpoint (WAL-framed records, epoch header)
//   <dir>/WAL        records accepted since the checkpoint (same epoch)
//
// Recovery = load SNAPSHOT, replay WAL on top. A torn WAL tail (crash
// mid-append) is tolerated and trimmed; corruption in the middle is
// surfaced with the byte offset and record index.
//
// Epochs make the SNAPSHOT/WAL pair crash-consistent: every checkpoint
// bumps the epoch, the new snapshot and the fresh WAL both start with a
// kEpoch record, and recovery ignores a WAL whose epoch differs from the
// snapshot's (a stale leftover from a crash mid-checkpoint). Legacy
// files without epoch records are epoch 0.
//
// Error model: the first I/O failure that can lose acknowledged data
// poisons the repository — healthy() turns false, every later mutation
// returns the original error, and the owner (PersistentServer) surfaces
// it as degraded() instead of silently acking onto a broken log.

#ifndef STQ_STORAGE_REPOSITORY_H_
#define STQ_STORAGE_REPOSITORY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "stq/common/status.h"
#include "stq/core/query_processor.h"
#include "stq/storage/env.h"
#include "stq/storage/snapshot.h"
#include "stq/storage/wal.h"

namespace stq {

class Repository {
 public:
  // `env == nullptr` means Env::Default().
  explicit Repository(std::string dir, Env* env = nullptr);

  // Destroying an open repository models a crash: the WAL handle is
  // dropped without flushing (only synced data is owed to clients).
  ~Repository();

  Repository(const Repository&) = delete;
  Repository& operator=(const Repository&) = delete;

  // Loads SNAPSHOT + WAL; after Open() the recovered state is available
  // and the WAL accepts new records. Creates the directory if missing,
  // removes a leftover SNAPSHOT.tmp from a crashed checkpoint, trims a
  // torn WAL tail, and discards a stale-epoch WAL.
  Status Open();

  const PersistedState& recovered() const { return recovered_; }

  // Current checkpoint epoch (0 until the first checkpoint).
  uint64_t epoch() const { return epoch_; }

  // False once an I/O failure has made further logging unsafe; `error()`
  // is the first such failure.
  bool healthy() const { return open_ && poisoned_.ok() && wal_.healthy(); }
  Status error() const {
    if (!poisoned_.ok()) return poisoned_;
    return wal_.error();
  }

  // --- Logging (call as the server accepts each report) ---------------------

  Status LogObjectUpsert(const PersistedObject& o);
  Status LogObjectRemove(ObjectId id);
  Status LogQueryRegister(const PersistedQuery& q);
  Status LogQueryMoveRect(QueryId id, const Rect& region);
  Status LogQueryMoveCenter(QueryId id, const Point& center);
  Status LogQueryUnregister(QueryId id);
  Status LogCommit(QueryId id, const std::vector<ObjectId>& answer);
  Status LogTick(Timestamp t);
  Status Sync();

  // Writes a fresh SNAPSHOT of `state` under the next epoch and starts a
  // fresh WAL. Crash-safe ordering: until the new snapshot is durably
  // renamed into place, the old SNAPSHOT+WAL pair remains recoverable;
  // past that point any failure poisons the repository (continuing to
  // ack on the old epoch could lose data).
  Status Checkpoint(const PersistedState& state);

  Status Close();

 private:
  Status AppendRecord(RecordType type, const std::string& payload);
  Status ReplayWal(bool* reuse_wal);
  // Truncate-creates the WAL with a synced kEpoch header and syncs the
  // directory so the file's existence is durable.
  Status CreateWal();
  Status Poison(const Status& s);
  Status WalCorruption(const LogReader& reader, const std::string& what);

  std::string dir_;
  std::string snapshot_path_;
  std::string wal_path_;
  Env* env_;
  LogWriter wal_;
  PersistedState recovered_;
  uint64_t epoch_ = 0;
  Status poisoned_;
  bool open_ = false;
};

// Applies a recovered state onto a fresh QueryProcessor: objects are
// upserted and queries re-registered, then one EvaluateTick at
// state.last_tick rebuilds the current answers. Returns the tick result
// (the rebuilt answers as positive updates).
Result<TickResult> RestoreProcessor(const PersistedState& state,
                                    QueryProcessor* processor);

}  // namespace stq

#endif  // STQ_STORAGE_REPOSITORY_H_
