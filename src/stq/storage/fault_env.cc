#include "stq/storage/fault_env.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "stq/common/random.h"

namespace stq {

// A handle into the live view. Handles hold a shared_ptr to their node;
// after SimulateCrash the live view is rebuilt, the node becomes
// unreachable, and the handle is "stale" — its operations fail without
// touching durable state (the process that owned it is dead). The node's
// contents are guarded by the env's mutex (see fault_env.h): every method
// locks env_->mu_ before touching node_ or the env's views.
class FaultWritableFile final : public WritableFile {
 public:
  FaultWritableFile(FaultInjectionEnv* env, std::string path,
                    std::shared_ptr<FaultInjectionEnv::FileNode> node)
      : env_(env), path_(std::move(path)), node_(std::move(node)) {}

  Status Append(const char* data, size_t n) override {
    MutexLock lock(&env_->mu_);
    if (closed_) return Status::FailedPrecondition("file closed: " + path_);
    int64_t tear = -1;
    Status s = env_->Charge("append", path_, &tear);
    if (!s.ok()) {
      // A torn write: a prefix of the failing append still lands in the
      // buffer, like a partial page reaching the OS before the error.
      if (tear >= 0 && env_->IsLive(path_, node_)) {
        node_->data.append(data, std::min(static_cast<size_t>(tear), n));
      }
      return s;
    }
    if (!env_->IsLive(path_, node_)) {
      return Status::IOError("stale file handle: " + path_);
    }
    node_->data.append(data, n);
    return Status::OK();
  }

  Status Flush() override {
    MutexLock lock(&env_->mu_);
    if (closed_) return Status::FailedPrecondition("file closed: " + path_);
    return env_->Charge("flush", path_);
  }

  Status Sync() override {
    MutexLock lock(&env_->mu_);
    if (closed_) return Status::FailedPrecondition("file closed: " + path_);
    STQ_RETURN_IF_ERROR(env_->Charge("sync", path_));
    if (!env_->IsLive(path_, node_)) {
      return Status::IOError("stale file handle: " + path_);
    }
    node_->synced = node_->data.size();
    // If the name is already durable, the synced data is durable now; a
    // pending create/rename becomes durable only at SyncDir.
    auto it = env_->durable_.find(path_);
    if (it != env_->durable_.end()) it->second = node_->data;
    return Status::OK();
  }

  Status Close() override {
    MutexLock lock(&env_->mu_);
    if (closed_) return Status::OK();
    closed_ = true;
    return env_->Charge("close", path_);
  }

 private:
  FaultInjectionEnv* env_;
  std::string path_;
  std::shared_ptr<FaultInjectionEnv::FileNode> node_
      STQ_PT_GUARDED_BY(env_->mu_);
  bool closed_ = false;
};

// Readers snapshot the live contents at open; concurrent appends through
// other handles do not bleed into an in-progress scan.
class FaultSequentialFile final : public SequentialFile {
 public:
  FaultSequentialFile(FaultInjectionEnv* env, std::string path,
                      std::string contents)
      : env_(env), path_(std::move(path)), contents_(std::move(contents)) {}

  Status Read(size_t n, std::string* out) override {
    MutexLock lock(&env_->mu_);
    STQ_RETURN_IF_ERROR(env_->Charge("read", path_));
    const size_t got = std::min(n, contents_.size() - pos_);
    out->assign(contents_, pos_, got);
    pos_ += got;
    return Status::OK();
  }

 private:
  FaultInjectionEnv* env_;
  std::string path_;
  std::string contents_;
  size_t pos_ = 0;
};

void FaultInjectionEnv::SetFailpoint(const std::string& op, Failpoint fp) {
  MutexLock lock(&mu_);
  failpoints_[op] = FailpointState{std::move(fp), 0, 0};
}

void FaultInjectionEnv::ClearFailpoint(const std::string& op) {
  MutexLock lock(&mu_);
  failpoints_.erase(op);
}

void FaultInjectionEnv::ClearFailpoints() {
  MutexLock lock(&mu_);
  failpoints_.clear();
}

void FaultInjectionEnv::CrashAfterOps(uint64_t n) {
  MutexLock lock(&mu_);
  crash_after_ = ops_ + n + 1;
  crashed_ = false;
}

bool FaultInjectionEnv::crashed() const {
  MutexLock lock(&mu_);
  return crashed_;
}

uint64_t FaultInjectionEnv::op_count() const {
  MutexLock lock(&mu_);
  return ops_;
}

Status FaultInjectionEnv::Charge(const std::string& op,
                                 const std::string& path,
                                 int64_t* tear_bytes) {
  if (tear_bytes != nullptr) *tear_bytes = -1;
  ++ops_;
  if (crashed_ || (crash_after_ != 0 && ops_ >= crash_after_)) {
    crashed_ = true;
    return Status::IOError("simulated crash at I/O op #" +
                           std::to_string(ops_));
  }
  auto it = failpoints_.find(op);
  if (it == failpoints_.end()) return Status::OK();
  FailpointState& state = it->second;
  const Failpoint& fp = state.spec;
  if (!fp.path_substring.empty() &&
      path.find(fp.path_substring) == std::string::npos) {
    return Status::OK();
  }
  ++state.calls;
  if (fp.delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(fp.delay_ms));
  }
  if (state.calls <= fp.fail_after) return Status::OK();
  if (fp.fail_count >= 0 && state.failures >= fp.fail_count) {
    return Status::OK();
  }
  ++state.failures;
  if (tear_bytes != nullptr) *tear_bytes = fp.tear_bytes;
  return fp.error;
}

bool FaultInjectionEnv::IsLive(
    const std::string& path, const std::shared_ptr<FileNode>& node) const {
  auto it = live_.find(path);
  return it != live_.end() && it->second == node;
}

void FaultInjectionEnv::RecordMetaOp(MetaOp op) {
  const std::string dir = DirName(op.kind == MetaOp::kRename ? op.b : op.a);
  pending_meta_[dir].push_back(std::move(op));
}

Status FaultInjectionEnv::NewWritableFile(
    const std::string& path, bool truncate,
    std::unique_ptr<WritableFile>* file) {
  MutexLock lock(&mu_);
  STQ_RETURN_IF_ERROR(Charge("new_writable", path));
  if (!dirs_.contains(DirName(path))) {
    return Status::IOError("cannot open for writing (no such directory): " +
                           path);
  }
  auto it = live_.find(path);
  std::shared_ptr<FileNode> node;
  if (it != live_.end()) {
    node = it->second;
    if (truncate) {
      // Truncation of an existing name is a data operation: the old
      // durable content survives a crash until the new data is synced.
      node->data.clear();
      node->synced = 0;
    }
  } else {
    node = std::make_shared<FileNode>();
    live_[path] = node;
    RecordMetaOp(MetaOp{MetaOp::kCreate, path, {}});
  }
  *file = std::make_unique<FaultWritableFile>(this, path, node);
  return Status::OK();
}

Status FaultInjectionEnv::NewSequentialFile(
    const std::string& path, std::unique_ptr<SequentialFile>* file) {
  MutexLock lock(&mu_);
  STQ_RETURN_IF_ERROR(Charge("new_sequential", path));
  auto it = live_.find(path);
  if (it == live_.end()) {
    return Status::IOError("cannot open for reading: " + path);
  }
  *file = std::make_unique<FaultSequentialFile>(this, path, it->second->data);
  return Status::OK();
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  MutexLock lock(&mu_);
  STQ_RETURN_IF_ERROR(Charge("rename", to));
  auto it = live_.find(from);
  if (it == live_.end()) return Status::IOError("rename: no such file: " + from);
  live_[to] = it->second;
  live_.erase(it);
  RecordMetaOp(MetaOp{MetaOp::kRename, from, to});
  return Status::OK();
}

Status FaultInjectionEnv::RemoveFile(const std::string& path) {
  MutexLock lock(&mu_);
  STQ_RETURN_IF_ERROR(Charge("remove", path));
  if (live_.erase(path) == 0) {
    return Status::IOError("remove: no such file: " + path);
  }
  RecordMetaOp(MetaOp{MetaOp::kRemove, path, {}});
  return Status::OK();
}

Status FaultInjectionEnv::TruncateFile(const std::string& path,
                                       uint64_t size) {
  MutexLock lock(&mu_);
  STQ_RETURN_IF_ERROR(Charge("truncate", path));
  auto it = live_.find(path);
  if (it == live_.end()) {
    return Status::IOError("truncate: no such file: " + path);
  }
  FileNode& node = *it->second;
  if (size > node.data.size()) {
    return Status::IOError("truncate past end: " + path);
  }
  node.data.resize(size);
  node.synced = std::min(node.synced, node.data.size());
  return Status::OK();
}

Status FaultInjectionEnv::SyncDir(const std::string& dir) {
  MutexLock lock(&mu_);
  STQ_RETURN_IF_ERROR(Charge("syncdir", dir));
  if (!dirs_.contains(dir)) {
    return Status::IOError("cannot open dir: " + dir);
  }
  auto journal = pending_meta_.find(dir);
  if (journal == pending_meta_.end()) return Status::OK();
  for (const MetaOp& op : journal->second) {
    switch (op.kind) {
      case MetaOp::kCreate: {
        auto node = live_.find(op.a);
        if (node != live_.end()) {
          durable_[op.a] = node->second->data.substr(0, node->second->synced);
        }
        break;
      }
      case MetaOp::kRename: {
        durable_.erase(op.a);
        auto node = live_.find(op.b);
        if (node != live_.end()) {
          durable_[op.b] = node->second->data.substr(0, node->second->synced);
        }
        break;
      }
      case MetaOp::kRemove:
        durable_.erase(op.a);
        break;
    }
  }
  pending_meta_.erase(journal);
  return Status::OK();
}

Status FaultInjectionEnv::CreateDir(const std::string& dir) {
  MutexLock lock(&mu_);
  STQ_RETURN_IF_ERROR(Charge("mkdir", dir));
  dirs_.emplace(dir, true);
  return Status::OK();
}

Status FaultInjectionEnv::ListDir(const std::string& dir,
                                  std::vector<std::string>* names) {
  MutexLock lock(&mu_);
  STQ_RETURN_IF_ERROR(Charge("listdir", dir));
  if (!dirs_.contains(dir)) {
    return Status::IOError("cannot list dir: " + dir);
  }
  names->clear();
  for (const auto& [path, node] : live_) {
    if (DirName(path) == dir) {
      names->push_back(path.substr(path.find_last_of('/') + 1));
    }
  }
  return Status::OK();
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  MutexLock lock(&mu_);
  return live_.contains(path);
}

Status FaultInjectionEnv::GetFileSize(const std::string& path,
                                      uint64_t* size) {
  MutexLock lock(&mu_);
  STQ_RETURN_IF_ERROR(Charge("filesize", path));
  auto it = live_.find(path);
  if (it == live_.end()) return Status::IOError("stat: no such file: " + path);
  *size = it->second->data.size();
  return Status::OK();
}

void FaultInjectionEnv::SimulateCrash(UnsyncedLoss loss, uint64_t seed) {
  MutexLock lock(&mu_);
  Xorshift128Plus rng(seed);

  if (loss == UnsyncedLoss::kKeepAll) {
    durable_.clear();
    for (const auto& [path, node] : live_) durable_[path] = node->data;
  } else if (loss == UnsyncedLoss::kKeepPrefix) {
    // A seeded random prefix of each directory's metadata journal made it
    // to disk (journals are ordered: op i+1 never survives without op i).
    for (auto& [dir, journal] : pending_meta_) {
      const uint64_t keep = rng.NextUint64(journal.size() + 1);
      for (uint64_t i = 0; i < keep; ++i) {
        const MetaOp& op = journal[i];
        const std::string* target = op.kind == MetaOp::kRename ? &op.b : &op.a;
        if (op.kind == MetaOp::kRemove) {
          durable_.erase(op.a);
          continue;
        }
        if (op.kind == MetaOp::kRename) durable_.erase(op.a);
        auto node = live_.find(*target);
        if (node != live_.end()) {
          durable_[*target] =
              node->second->data.substr(0, node->second->synced);
        }
      }
    }
    // Each surviving file additionally keeps a seeded random prefix of
    // its unsynced suffix — how torn WAL tails arise in reality.
    for (auto& [path, content] : durable_) {
      auto node = live_.find(path);
      if (node == live_.end()) continue;
      const std::string& data = node->second->data;
      if (data.size() <= content.size() ||
          data.compare(0, content.size(), content) != 0) {
        continue;
      }
      const uint64_t extra = rng.NextUint64(data.size() - content.size() + 1);
      content.append(data, content.size(), extra);
    }
  }

  live_.clear();
  for (const auto& [path, content] : durable_) {
    auto node = std::make_shared<FileNode>();
    node->data = content;
    node->synced = content.size();
    live_[path] = node;
  }
  pending_meta_.clear();
  failpoints_.clear();
  crash_after_ = 0;
  crashed_ = false;
}

std::string FaultInjectionEnv::FileContentsForTest(
    const std::string& path) const {
  MutexLock lock(&mu_);
  auto it = live_.find(path);
  return it == live_.end() ? std::string() : it->second->data;
}

uint64_t FaultInjectionEnv::DurableBytesForTest(
    const std::string& path) const {
  MutexLock lock(&mu_);
  auto it = durable_.find(path);
  return it == durable_.end() ? 0 : it->second.size();
}

}  // namespace stq
