#include "stq/storage/snapshot.h"

#include "stq/storage/wal.h"

namespace stq {

bool operator==(const PersistedState& a, const PersistedState& b) {
  return a.objects == b.objects && a.queries == b.queries &&
         a.commits == b.commits && a.last_tick == b.last_tick;
}

Status WriteSnapshotFile(Env* env, const std::string& path,
                         const PersistedState& state, uint64_t epoch) {
  if (env == nullptr) env = Env::Default();
  LogWriter writer;

  // On any failure: drop the half-written file so the next checkpoint
  // (or recovery) doesn't trip over it.
  auto fail = [&](const Status& s) {
    writer.Abandon();
    (void)env->RemoveFile(path);
    return s;
  };

  Status s = writer.Open(env, path, /*truncate=*/true);
  if (!s.ok()) return s;

  std::string payload;
  EncodeEpoch(epoch, &payload);
  s = writer.Append(static_cast<uint8_t>(RecordType::kEpoch), payload);
  if (!s.ok()) return fail(s);
  for (const PersistedObject& o : state.objects) {
    payload.clear();
    EncodeObjectUpsert(o, &payload);
    s = writer.Append(static_cast<uint8_t>(RecordType::kObjectUpsert),
                      payload);
    if (!s.ok()) return fail(s);
  }
  for (const PersistedQuery& q : state.queries) {
    payload.clear();
    EncodeQueryRegister(q, &payload);
    s = writer.Append(static_cast<uint8_t>(RecordType::kQueryRegister),
                      payload);
    if (!s.ok()) return fail(s);
  }
  for (const PersistedCommit& c : state.commits) {
    payload.clear();
    EncodeCommit(c, &payload);
    s = writer.Append(static_cast<uint8_t>(RecordType::kCommit), payload);
    if (!s.ok()) return fail(s);
  }
  // Terminal record: its presence marks the snapshot as complete.
  payload.clear();
  EncodeTick(state.last_tick, &payload);
  s = writer.Append(static_cast<uint8_t>(RecordType::kTick), payload);
  if (!s.ok()) return fail(s);
  s = writer.Sync();
  if (!s.ok()) return fail(s);
  s = writer.Close();
  if (!s.ok()) return fail(s);
  return Status::OK();
}

Status WriteSnapshot(Env* env, const std::string& path,
                     const PersistedState& state, uint64_t epoch) {
  if (env == nullptr) env = Env::Default();
  // Write to a temp file and rename for atomicity against crashes during
  // checkpointing; sync the directory so the rename itself is durable.
  const std::string tmp = path + ".tmp";
  STQ_RETURN_IF_ERROR(WriteSnapshotFile(env, tmp, state, epoch));
  Status s = env->RenameFile(tmp, path);
  if (!s.ok()) {
    (void)env->RemoveFile(tmp);
    return s;
  }
  return env->SyncDir(DirName(path));
}

Status ReadSnapshot(Env* env, const std::string& path, PersistedState* state,
                    uint64_t* epoch) {
  if (env == nullptr) env = Env::Default();
  *state = PersistedState{};
  if (epoch != nullptr) *epoch = 0;
  if (!env->FileExists(path)) {
    // A missing snapshot is a fresh start, not an error.
    return Status::OK();
  }
  LogReader reader;
  STQ_RETURN_IF_ERROR(reader.Open(env, path));
  bool complete = false;  // saw the terminal kTick record
  for (;;) {
    uint8_t type = 0;
    std::string payload;
    bool eof = false;
    STQ_RETURN_IF_ERROR(reader.ReadRecord(&type, &payload, &eof));
    if (eof) break;
    complete = false;
    switch (static_cast<RecordType>(type)) {
      case RecordType::kEpoch: {
        uint64_t e = 0;
        STQ_RETURN_IF_ERROR(DecodeEpoch(payload, &e));
        if (epoch != nullptr) *epoch = e;
        break;
      }
      case RecordType::kObjectUpsert: {
        PersistedObject o;
        STQ_RETURN_IF_ERROR(DecodeObjectUpsert(payload, &o));
        state->objects.push_back(o);
        break;
      }
      case RecordType::kQueryRegister: {
        PersistedQuery q;
        STQ_RETURN_IF_ERROR(DecodeQueryRegister(payload, &q));
        state->queries.push_back(q);
        break;
      }
      case RecordType::kCommit: {
        PersistedCommit c;
        STQ_RETURN_IF_ERROR(DecodeCommit(payload, &c));
        state->commits.push_back(c);
        break;
      }
      case RecordType::kTick: {
        STQ_RETURN_IF_ERROR(DecodeTick(payload, &state->last_tick));
        complete = true;
        break;
      }
      default:
        return Status::Corruption("unexpected record type in snapshot");
    }
  }
  if (!complete) {
    // The WAL framing treats a torn tail as clean EOF, which is right for
    // a log but wrong for a snapshot: a snapshot missing its terminal
    // tick record lost data and must not be loaded as if it were whole.
    return Status::Corruption("torn snapshot (no terminal tick record): " +
                              path);
  }
  return reader.Close();
}

}  // namespace stq
