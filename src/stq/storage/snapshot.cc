#include "stq/storage/snapshot.h"

#include <cstdio>

#include "stq/storage/wal.h"

namespace stq {

bool operator==(const PersistedState& a, const PersistedState& b) {
  return a.objects == b.objects && a.queries == b.queries &&
         a.commits == b.commits && a.last_tick == b.last_tick;
}

Status WriteSnapshot(const std::string& path, const PersistedState& state) {
  // Write to a temp file and rename for atomicity against crashes during
  // checkpointing.
  const std::string tmp = path + ".tmp";
  LogWriter writer;
  STQ_RETURN_IF_ERROR(writer.Open(tmp, /*truncate=*/true));

  std::string payload;
  for (const PersistedObject& o : state.objects) {
    payload.clear();
    EncodeObjectUpsert(o, &payload);
    STQ_RETURN_IF_ERROR(
        writer.Append(static_cast<uint8_t>(RecordType::kObjectUpsert),
                      payload));
  }
  for (const PersistedQuery& q : state.queries) {
    payload.clear();
    EncodeQueryRegister(q, &payload);
    STQ_RETURN_IF_ERROR(
        writer.Append(static_cast<uint8_t>(RecordType::kQueryRegister),
                      payload));
  }
  for (const PersistedCommit& c : state.commits) {
    payload.clear();
    EncodeCommit(c, &payload);
    STQ_RETURN_IF_ERROR(
        writer.Append(static_cast<uint8_t>(RecordType::kCommit), payload));
  }
  payload.clear();
  EncodeTick(state.last_tick, &payload);
  STQ_RETURN_IF_ERROR(
      writer.Append(static_cast<uint8_t>(RecordType::kTick), payload));
  STQ_RETURN_IF_ERROR(writer.Sync());
  STQ_RETURN_IF_ERROR(writer.Close());

  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IOError("rename failed: " + path);
  }
  return Status::OK();
}

Status ReadSnapshot(const std::string& path, PersistedState* state) {
  *state = PersistedState{};
  LogReader reader;
  Status open = reader.Open(path);
  if (!open.ok()) {
    // A missing snapshot is a fresh start, not an error.
    return Status::OK();
  }
  for (;;) {
    uint8_t type = 0;
    std::string payload;
    bool eof = false;
    STQ_RETURN_IF_ERROR(reader.ReadRecord(&type, &payload, &eof));
    if (eof) break;
    switch (static_cast<RecordType>(type)) {
      case RecordType::kObjectUpsert: {
        PersistedObject o;
        STQ_RETURN_IF_ERROR(DecodeObjectUpsert(payload, &o));
        state->objects.push_back(o);
        break;
      }
      case RecordType::kQueryRegister: {
        PersistedQuery q;
        STQ_RETURN_IF_ERROR(DecodeQueryRegister(payload, &q));
        state->queries.push_back(q);
        break;
      }
      case RecordType::kCommit: {
        PersistedCommit c;
        STQ_RETURN_IF_ERROR(DecodeCommit(payload, &c));
        state->commits.push_back(c);
        break;
      }
      case RecordType::kTick: {
        STQ_RETURN_IF_ERROR(DecodeTick(payload, &state->last_tick));
        break;
      }
      default:
        return Status::Corruption("unexpected record type in snapshot");
    }
  }
  return reader.Close();
}

}  // namespace stq
