// Workload (de)serialization: save a pre-rolled workload to a file and
// load it back bit-exactly. Lets expensive workloads be generated once
// and replayed across engines, benchmark runs, and machines — the moral
// equivalent of shipping a Brinkhoff generator trace.
//
// The file reuses the WAL frame format (CRC-framed records), so torn or
// corrupted files are detected on load.

#ifndef STQ_STORAGE_WORKLOAD_IO_H_
#define STQ_STORAGE_WORKLOAD_IO_H_

#include <string>

#include "stq/common/result.h"
#include "stq/common/status.h"
#include "stq/gen/workload.h"
#include "stq/storage/env.h"

namespace stq {

// Writes `workload` to `path`, replacing any existing file (atomically:
// temp file + rename + directory sync). `env == nullptr` means
// Env::Default().
Status SaveWorkload(const std::string& path, const Workload& workload,
                    Env* env = nullptr);

// Loads a workload previously written by SaveWorkload. Corruption and
// truncation are reported, not silently tolerated (a benchmark input must
// be exact).
Result<Workload> LoadWorkload(const std::string& path, Env* env = nullptr);

}  // namespace stq

#endif  // STQ_STORAGE_WORKLOAD_IO_H_
