// Little-endian fixed-width encoding helpers for the storage layer.

#ifndef STQ_STORAGE_CODING_H_
#define STQ_STORAGE_CODING_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

namespace stq {

inline void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v);
  buf[1] = static_cast<char>(v >> 8);
  buf[2] = static_cast<char>(v >> 16);
  buf[3] = static_cast<char>(v >> 24);
  dst->append(buf, 4);
}

inline void PutFixed64(std::string* dst, uint64_t v) {
  PutFixed32(dst, static_cast<uint32_t>(v));
  PutFixed32(dst, static_cast<uint32_t>(v >> 32));
}

inline void PutDouble(std::string* dst, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutFixed64(dst, bits);
}

inline void PutByte(std::string* dst, uint8_t v) {
  dst->push_back(static_cast<char>(v));
}

// Cursor-style decoding. Each Get advances *offset and returns false on
// underflow (leaving outputs unspecified).
//
// Bounds checks are phrased as `src.size() - *offset < n` guarded by
// `*offset <= src.size()` rather than `*offset + n > src.size()`: the
// latter wraps around for offsets near SIZE_MAX and would spuriously
// accept an out-of-bounds read.

// True when `n` more bytes can be read at *offset.
inline bool DecodeRemaining(const std::string& src, size_t offset, size_t n) {
  return offset <= src.size() && src.size() - offset >= n;
}

inline bool GetFixed32(const std::string& src, size_t* offset, uint32_t* v) {
  if (!DecodeRemaining(src, *offset, 4)) return false;
  const auto* p = reinterpret_cast<const unsigned char*>(src.data() + *offset);
  *v = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
       (static_cast<uint32_t>(p[2]) << 16) |
       (static_cast<uint32_t>(p[3]) << 24);
  *offset += 4;
  return true;
}

inline bool GetFixed64(const std::string& src, size_t* offset, uint64_t* v) {
  uint32_t lo, hi;
  if (!GetFixed32(src, offset, &lo)) return false;
  if (!GetFixed32(src, offset, &hi)) return false;
  *v = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
  return true;
}

inline bool GetDouble(const std::string& src, size_t* offset, double* v) {
  uint64_t bits;
  if (!GetFixed64(src, offset, &bits)) return false;
  std::memcpy(v, &bits, sizeof(*v));
  return true;
}

inline bool GetByte(const std::string& src, size_t* offset, uint8_t* v) {
  if (!DecodeRemaining(src, *offset, 1)) return false;
  *v = static_cast<uint8_t>(src[*offset]);
  *offset += 1;
  return true;
}

}  // namespace stq

#endif  // STQ_STORAGE_CODING_H_
