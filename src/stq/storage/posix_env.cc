// PosixEnv: the production Env. This is the only translation unit in the
// library allowed to touch the raw POSIX file API (fopen/fsync/rename/
// truncate/...); everything else goes through the Env interface so that
// fault injection covers every I/O call site.

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <system_error>

#include "stq/storage/env.h"

namespace stq {

namespace {

Status PosixError(const std::string& context, int err) {
  // system_category().message() rather than strerror(): the latter
  // returns a pointer into static storage (concurrency-mt-unsafe).
  return Status::IOError(context + ": " + std::system_category().message(err));
}

class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(std::FILE* file, std::string path)
      : file_(file), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    // The owning layer (LogWriter) enforces close-before-destroy; this is
    // a leak guard only.
    if (file_ != nullptr) std::fclose(file_);
  }

  Status Append(const char* data, size_t n) override {
    if (std::fwrite(data, 1, n, file_) != n) {
      return PosixError("write failed: " + path_, errno);
    }
    return Status::OK();
  }

  Status Flush() override {
    if (std::fflush(file_) != 0) {
      return PosixError("fflush failed: " + path_, errno);
    }
    return Status::OK();
  }

  Status Sync() override {
    STQ_RETURN_IF_ERROR(Flush());
    if (fsync(fileno(file_)) != 0) {
      return PosixError("fsync failed: " + path_, errno);
    }
    return Status::OK();
  }

  Status Close() override {
    if (file_ == nullptr) return Status::OK();
    const int rc = std::fclose(file_);
    file_ = nullptr;
    if (rc != 0) return PosixError("fclose failed: " + path_, errno);
    return Status::OK();
  }

 private:
  std::FILE* file_;
  std::string path_;
};

class PosixSequentialFile final : public SequentialFile {
 public:
  PosixSequentialFile(std::FILE* file, std::string path)
      : file_(file), path_(std::move(path)) {}

  ~PosixSequentialFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  Status Read(size_t n, std::string* out) override {
    out->resize(n);
    const size_t got = std::fread(out->data(), 1, n, file_);
    out->resize(got);
    if (got < n && std::ferror(file_) != 0) {
      return PosixError("read failed: " + path_, errno);
    }
    return Status::OK();
  }

 private:
  std::FILE* file_;
  std::string path_;
};

class PosixEnv final : public Env {
 public:
  Status NewWritableFile(const std::string& path, bool truncate,
                         std::unique_ptr<WritableFile>* file) override {
    std::FILE* f = std::fopen(path.c_str(), truncate ? "wb" : "ab");
    if (f == nullptr) {
      return PosixError("cannot open for writing: " + path, errno);
    }
    *file = std::make_unique<PosixWritableFile>(f, path);
    return Status::OK();
  }

  Status NewSequentialFile(const std::string& path,
                           std::unique_ptr<SequentialFile>* file) override {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      return PosixError("cannot open for reading: " + path, errno);
    }
    *file = std::make_unique<PosixSequentialFile>(f, path);
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      return PosixError("rename " + from + " -> " + to + " failed", errno);
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (unlink(path.c_str()) != 0) {
      return PosixError("unlink failed: " + path, errno);
    }
    return Status::OK();
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    if (truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return PosixError("truncate failed: " + path, errno);
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& dir) override {
    const int fd = open(dir.c_str(), O_RDONLY);
    if (fd < 0) return PosixError("cannot open dir: " + dir, errno);
    Status s;
    if (fsync(fd) != 0) s = PosixError("fsync dir failed: " + dir, errno);
    close(fd);
    return s;
  }

  Status CreateDir(const std::string& dir) override {
    if (mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
      return PosixError("mkdir failed: " + dir, errno);
    }
    return Status::OK();
  }

  Status ListDir(const std::string& dir,
                 std::vector<std::string>* names) override {
    names->clear();
    DIR* d = opendir(dir.c_str());
    if (d == nullptr) return PosixError("cannot list dir: " + dir, errno);
    while (struct dirent* entry = readdir(d)) {
      const std::string name = entry->d_name;
      if (name != "." && name != "..") names->push_back(name);
    }
    closedir(d);
    std::sort(names->begin(), names->end());
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    return access(path.c_str(), F_OK) == 0;
  }

  Status GetFileSize(const std::string& path, uint64_t* size) override {
    struct stat st {};
    if (stat(path.c_str(), &st) != 0) {
      return PosixError("stat failed: " + path, errno);
    }
    *size = static_cast<uint64_t>(st.st_size);
    return Status::OK();
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();  // intentionally leaked singleton
  return env;
}

std::string DirName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace stq
