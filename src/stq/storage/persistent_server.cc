#include "stq/storage/persistent_server.h"

#include <algorithm>

#include "stq/common/flat_hash.h"
#include "stq/common/logging.h"

namespace stq {

PersistedState CapturePersistedState(const Server& server) {
  PersistedState state;
  const QueryProcessor& qp = server.processor();
  qp.ForEachObjectInfo([&](const QueryProcessor::ObjectInfo& o) {
    PersistedObject po;
    po.id = o.id;
    po.loc = o.loc;
    po.vel = o.vel;
    po.t = o.t;
    po.predictive = o.predictive;
    state.objects.push_back(po);
  });
  qp.ForEachQueryInfo([&](const QueryProcessor::QueryInfo& q) {
    PersistedQuery pq;
    pq.id = q.id;
    pq.kind = q.kind;
    pq.region = q.region;
    pq.center = q.circle.center;
    pq.k = q.k;
    // For k-NN the circle radius is derived state (distance to the k-th
    // neighbor), not a query parameter; persist it only for circles.
    pq.radius = q.kind == QueryKind::kCircleRange ? q.circle.radius : 0.0;
    pq.t_from = q.t_from;
    pq.t_to = q.t_to;
    pq.owner = server.OwnerOf(q.id).value_or(0);
    state.queries.push_back(pq);
  });
  server.committed().ForEach(
      [&](QueryId qid, const AnswerSet& answer) {
        PersistedCommit pc;
        pc.id = qid;
        // AnswerSet iterates ascending by id; already sorted.
        pc.answer.assign(answer.begin(), answer.end());
        state.commits.push_back(pc);
      });
  auto by_id = [](const auto& a, const auto& b) { return a.id < b.id; };
  std::sort(state.objects.begin(), state.objects.end(), by_id);
  std::sort(state.queries.begin(), state.queries.end(), by_id);
  std::sort(state.commits.begin(), state.commits.end(), by_id);
  state.last_tick = server.last_tick().time;
  return state;
}

PersistentServer::PersistentServer(const Options& options)
    : options_(options), repository_(options.dir, options.env) {}

Status PersistentServer::Open() {
  if (open_) return Status::FailedPrecondition("already open");
  STQ_RETURN_IF_ERROR(repository_.Open());
  const PersistedState& state = repository_.recovered();

  server_ = std::make_unique<Server>(options_.server);
  Result<TickResult> restore =
      RestoreProcessor(state, &server_->processor());
  if (!restore.ok()) return restore.status();
  server_->RestoreLastTick(*restore);

  // Re-attach every known client channel in the disconnected state and
  // rebind their queries; clients resynchronize via ReconnectClient.
  FlatSet<ClientId> seen;
  for (const PersistedQuery& q : state.queries) {
    if (q.owner == 0) continue;
    if (seen.insert(q.owner).second) {
      STQ_RETURN_IF_ERROR(
          server_->AttachClient(q.owner, /*connected=*/false));
    }
    STQ_RETURN_IF_ERROR(server_->AdoptQuery(q.id, q.owner));
  }
  for (const PersistedCommit& c : state.commits) {
    server_->RestoreCommitted(c.id, c.answer);
  }
  open_ = true;
  return Status::OK();
}

Status PersistentServer::GuardWritable() const {
  if (!open_) return Status::FailedPrecondition("not open");
  if (!repository_.healthy()) {
    return Status::FailedPrecondition("server degraded: " +
                                      repository_.error().ToString());
  }
  return Status::OK();
}

Status PersistentServer::ReportObject(ObjectId id, const Point& loc,
                                      Timestamp t) {
  STQ_RETURN_IF_ERROR(GuardWritable());
  STQ_RETURN_IF_ERROR(server_->ReportObject(id, loc, t));
  PersistedObject o;
  o.id = id;
  o.loc = loc;
  o.t = t;
  return repository_.LogObjectUpsert(o);
}

Status PersistentServer::ReportPredictiveObject(ObjectId id, const Point& loc,
                                                const Velocity& vel,
                                                Timestamp t) {
  STQ_RETURN_IF_ERROR(GuardWritable());
  STQ_RETURN_IF_ERROR(server_->ReportPredictiveObject(id, loc, vel, t));
  PersistedObject o;
  o.id = id;
  o.loc = loc;
  o.vel = vel;
  o.t = t;
  o.predictive = true;
  return repository_.LogObjectUpsert(o);
}

Status PersistentServer::RemoveObject(ObjectId id) {
  STQ_RETURN_IF_ERROR(GuardWritable());
  STQ_RETURN_IF_ERROR(server_->RemoveObject(id));
  return repository_.LogObjectRemove(id);
}

Result<Server::Delivery> PersistentServer::ReconnectClient(ClientId cid) {
  STQ_RETURN_IF_ERROR(GuardWritable());
  Result<Server::Delivery> delivery = server_->ReconnectClient(cid);
  if (!delivery.ok()) return delivery;
  // The wakeup response commits the recovered answers server-side; mirror
  // those commits in the log.
  std::vector<QueryId> owned;
  server_->processor().ForEachQueryInfo(
      [&](const QueryProcessor::QueryInfo& q) {
        if (server_->OwnerOf(q.id) == cid) owned.push_back(q.id);
      });
  std::sort(owned.begin(), owned.end());
  for (QueryId qid : owned) {
    Status s = LogCommitOf(qid);
    if (!s.ok()) return s;
  }
  return delivery;
}

Status PersistentServer::LogCommitOf(QueryId qid) {
  Result<std::vector<ObjectId>> answer =
      server_->processor().CurrentAnswer(qid);
  if (!answer.ok()) return Status::OK();
  return repository_.LogCommit(qid, *answer);
}

Status PersistentServer::RegisterRangeQuery(QueryId qid, ClientId cid,
                                            const Rect& region) {
  STQ_RETURN_IF_ERROR(GuardWritable());
  STQ_RETURN_IF_ERROR(server_->RegisterRangeQuery(qid, cid, region));
  PersistedQuery q;
  q.id = qid;
  q.kind = QueryKind::kRange;
  q.region = region;
  q.owner = cid;
  return repository_.LogQueryRegister(q);
}

Status PersistentServer::RegisterKnnQuery(QueryId qid, ClientId cid,
                                          const Point& center, int k) {
  STQ_RETURN_IF_ERROR(GuardWritable());
  STQ_RETURN_IF_ERROR(server_->RegisterKnnQuery(qid, cid, center, k));
  PersistedQuery q;
  q.id = qid;
  q.kind = QueryKind::kKnn;
  q.center = center;
  q.k = k;
  q.owner = cid;
  return repository_.LogQueryRegister(q);
}

Status PersistentServer::RegisterCircleQuery(QueryId qid, ClientId cid,
                                             const Point& center,
                                             double radius) {
  STQ_RETURN_IF_ERROR(GuardWritable());
  STQ_RETURN_IF_ERROR(server_->RegisterCircleQuery(qid, cid, center, radius));
  PersistedQuery q;
  q.id = qid;
  q.kind = QueryKind::kCircleRange;
  q.center = center;
  q.radius = radius;
  q.owner = cid;
  return repository_.LogQueryRegister(q);
}

Status PersistentServer::RegisterPredictiveQuery(QueryId qid, ClientId cid,
                                                 const Rect& region,
                                                 double t_from, double t_to) {
  STQ_RETURN_IF_ERROR(GuardWritable());
  STQ_RETURN_IF_ERROR(
      server_->RegisterPredictiveQuery(qid, cid, region, t_from, t_to));
  PersistedQuery q;
  q.id = qid;
  q.kind = QueryKind::kPredictiveRange;
  q.region = region;
  q.t_from = t_from;
  q.t_to = t_to;
  q.owner = cid;
  return repository_.LogQueryRegister(q);
}

Status PersistentServer::MoveRangeQuery(QueryId qid, const Rect& region) {
  STQ_RETURN_IF_ERROR(GuardWritable());
  // Hearing from a moving query may commit its latest answer (channel up
  // and, when a session layer gates commits, client caught up). The
  // commit serial says whether it actually did; mirror exactly those
  // commits in the log.
  const uint64_t serial = server_->commit_serial();
  STQ_RETURN_IF_ERROR(server_->MoveRangeQuery(qid, region));
  STQ_RETURN_IF_ERROR(repository_.LogQueryMoveRect(qid, region));
  if (server_->commit_serial() != serial) return LogCommitOf(qid);
  return Status::OK();
}

Status PersistentServer::MoveKnnQuery(QueryId qid, const Point& center) {
  STQ_RETURN_IF_ERROR(GuardWritable());
  const uint64_t serial = server_->commit_serial();
  STQ_RETURN_IF_ERROR(server_->MoveKnnQuery(qid, center));
  STQ_RETURN_IF_ERROR(repository_.LogQueryMoveCenter(qid, center));
  if (server_->commit_serial() != serial) return LogCommitOf(qid);
  return Status::OK();
}

Status PersistentServer::MoveCircleQuery(QueryId qid, const Point& center) {
  STQ_RETURN_IF_ERROR(GuardWritable());
  const uint64_t serial = server_->commit_serial();
  STQ_RETURN_IF_ERROR(server_->MoveCircleQuery(qid, center));
  STQ_RETURN_IF_ERROR(repository_.LogQueryMoveCenter(qid, center));
  if (server_->commit_serial() != serial) return LogCommitOf(qid);
  return Status::OK();
}

Status PersistentServer::MovePredictiveQuery(QueryId qid, const Rect& region) {
  STQ_RETURN_IF_ERROR(GuardWritable());
  const uint64_t serial = server_->commit_serial();
  STQ_RETURN_IF_ERROR(server_->MovePredictiveQuery(qid, region));
  STQ_RETURN_IF_ERROR(repository_.LogQueryMoveRect(qid, region));
  if (server_->commit_serial() != serial) return LogCommitOf(qid);
  return Status::OK();
}

Status PersistentServer::CommitQuery(QueryId qid) {
  STQ_RETURN_IF_ERROR(GuardWritable());
  const uint64_t serial = server_->commit_serial();
  STQ_RETURN_IF_ERROR(server_->CommitQuery(qid));
  if (server_->commit_serial() != serial) return LogCommitOf(qid);
  return Status::OK();
}

Status PersistentServer::UnregisterQuery(QueryId qid) {
  STQ_RETURN_IF_ERROR(GuardWritable());
  STQ_RETURN_IF_ERROR(server_->UnregisterQuery(qid));
  return repository_.LogQueryUnregister(qid);
}

std::vector<Server::Delivery> PersistentServer::Tick(Timestamp now) {
  if (!GuardWritable().ok()) return {};
  std::vector<Server::Delivery> deliveries = server_->Tick(now);
  Status s = repository_.LogTick(now);
  if (s.ok() && options_.sync_every_tick) s = repository_.Sync();
  if (!s.ok()) {
    // The answers of this tick may not survive a crash: do not hand them
    // to clients. The failed append/sync has already poisoned the
    // repository, so the server is degraded from here on.
    STQ_LOG(Error) << "failed to persist tick: " << s.ToString();
    return {};
  }
  return deliveries;
}

PersistedState PersistentServer::CaptureState() const {
  return CapturePersistedState(*server_);
}

Status PersistentServer::Checkpoint() {
  if (!open_) return Status::FailedPrecondition("not open");
  return repository_.Checkpoint(CaptureState());
}

Status PersistentServer::Close() {
  if (!open_) return Status::OK();
  open_ = false;
  return repository_.Close();
}

}  // namespace stq
