# Correctness-tooling knobs: warnings, sanitizers, clang-tidy, and the
# invariant-check macro. Included from the top-level CMakeLists.
#
#   -DSTQ_WERROR=ON                     promote warnings to errors (CI default)
#   -DSTQ_SANITIZE=address,undefined    or: thread  (gcc and clang)
#   -DSTQ_CLANG_TIDY=ON                 run clang-tidy alongside compilation
#   -DSTQ_ENABLE_INVARIANT_CHECKS=ON    compile in STQ_DCHECK and the
#                                       expensive audit tier
#   -DSTQ_LIBFUZZER=ON                  clang-only: coverage-guided fuzzers

option(STQ_WERROR "Treat compiler warnings as errors" OFF)
option(STQ_CLANG_TIDY "Run clang-tidy on every translation unit" OFF)
option(STQ_ENABLE_INVARIANT_CHECKS
       "Enable STQ_DCHECK and expensive invariant audits" OFF)
option(STQ_LIBFUZZER
       "Build fuzz harnesses against libFuzzer (requires clang)" OFF)
option(STQ_ALLOC_COUNTING
       "Replace global operator new with a counting wrapper so TickStats \
reports heap allocations per tick" ON)
option(STQ_SIMD
       "Compile the AVX2/NEON batch predicate kernels (runtime-detected; \
scalar fallback is always present and byte-identical)" ON)
set(STQ_SANITIZE "" CACHE STRING
    "Comma/semicolon-separated sanitizers: address, undefined, thread, leak")

add_compile_options(-Wall -Wextra)
if(CMAKE_CXX_COMPILER_ID MATCHES "Clang")
  # Capability analysis over the stq::Mutex annotations (common/mutex.h,
  # common/annotations.h). Clang-only; the dedicated CI leg builds with
  # clang + STQ_WERROR so violations are hard errors.
  add_compile_options(-Wthread-safety)
endif()
if(STQ_WERROR)
  add_compile_options(-Werror)
endif()

if(STQ_ENABLE_INVARIANT_CHECKS)
  add_compile_definitions(STQ_ENABLE_INVARIANT_CHECKS)
endif()

if(STQ_ALLOC_COUNTING)
  if(STQ_SANITIZE)
    # The sanitizer runtimes interpose malloc themselves; stacking our
    # operator-new replacement on top is legal but pointless there, and
    # TSan in particular dislikes a second layer. Counting is a Release
    # metric; sanitizer legs measure correctness, not allocations.
    message(STATUS "stq: STQ_ALLOC_COUNTING disabled under sanitizers")
  else()
    add_compile_definitions(STQ_ALLOC_COUNTING)
  endif()
endif()

if(STQ_SANITIZE)
  # Accept both "address,undefined" and "address;undefined".
  string(REPLACE "," ";" _stq_sanitizers "${STQ_SANITIZE}")
  string(REPLACE ";" "," _stq_san_flag "${_stq_sanitizers}")
  message(STATUS "stq: sanitizers enabled: ${_stq_san_flag}")
  add_compile_options(-fsanitize=${_stq_san_flag} -fno-omit-frame-pointer -g)
  add_link_options(-fsanitize=${_stq_san_flag})
  if("undefined" IN_LIST _stq_sanitizers)
    # Fail loudly on UB rather than printing and continuing.
    add_compile_options(-fno-sanitize-recover=undefined)
    add_link_options(-fno-sanitize-recover=undefined)
  endif()
endif()

if(STQ_LIBFUZZER AND NOT CMAKE_CXX_COMPILER_ID MATCHES "Clang")
  message(FATAL_ERROR "STQ_LIBFUZZER requires clang (libFuzzer runtime)")
endif()

if(STQ_CLANG_TIDY)
  find_program(STQ_CLANG_TIDY_EXE NAMES clang-tidy)
  if(NOT STQ_CLANG_TIDY_EXE)
    message(FATAL_ERROR "STQ_CLANG_TIDY=ON but clang-tidy was not found")
  endif()
  # Config comes from .clang-tidy at the repo root; warnings become hard
  # errors so the gate cannot rot.
  set(CMAKE_CXX_CLANG_TIDY
      ${STQ_CLANG_TIDY_EXE} --warnings-as-errors=*)
endif()

# clang-tidy (and developers) rely on a compilation database.
set(CMAKE_EXPORT_COMPILE_COMMANDS ON)
