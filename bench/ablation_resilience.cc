// Ablation A9 — session resilience: delivery overhead and recovery
// traffic vs. transport fault rate.
//
// The same network workload is driven through the session layer
// (SessionManager + per-client ClientSession) over a fault-injected
// transport whose drop/delay rates sweep from 0 (PerfectTransport
// behavior) upward, once per recovery policy. Faults stop at the end of
// the workload and the run then ticks a quiet world until every client
// has converged back to the server's answers.
//
// Expected shape: bytes shipped and resync counts grow with the fault
// rate; kCommittedDiff recovers with markedly fewer bytes than
// kFullAnswer at every rate (the paper's Section 3.3 claim, now under
// loss instead of explicit disconnects); settle time stays within a few
// ticks of quiesce thanks to heartbeat gap detection.

#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "stq/core/server.h"
#include "stq/core/session.h"
#include "stq/core/transport.h"
#include "stq/gen/workload.h"

namespace {

struct RunResult {
  stq_bench::ResilienceSample sample;
  size_t bytes_shipped = 0;
  size_t bytes_resident = 0;  // resident answer bytes at quiesce
  uint64_t settle_ticks = 0;
  int converged = 0;
};

RunResult RunOne(const stq::Workload& workload, size_t num_clients,
                 double drop_rate, stq::RecoveryPolicy policy) {
  stq::Server::Options server_options;
  server_options.processor.grid_cells_per_side = 32;
  server_options.recovery = policy;
  stq::Server server(server_options);
  stq::PlainSessionBackend backend(&server);
  stq::FaultInjectionTransport transport(
      7000 + static_cast<uint64_t>(drop_rate * 1000.0) +
      (policy == stq::RecoveryPolicy::kFullAnswer ? 31 : 0));
  const stq::SessionOptions session_options;
  stq::SessionManager manager(&backend, &transport, session_options);

  std::vector<std::unique_ptr<stq::ClientSession>> sessions;
  for (stq::ClientId cid = 1; cid <= num_clients; ++cid) {
    server.AttachClient(cid);
    sessions.push_back(std::make_unique<stq::ClientSession>(
        cid, &manager, &transport, session_options));
    manager.AttachSession(sessions.back().get());
  }
  for (const stq::ObjectReport& r : workload.initial_objects()) {
    server.ReportObject(r.id, r.loc, r.t);
  }
  // Generator query ids are 1..num_queries: query qid -> client qid.
  for (const stq::QueryRegionReport& q : workload.initial_queries()) {
    server.RegisterRangeQuery(q.id, q.id, q.region);
  }

  stq::ChaosProfile profile;
  profile.drop = drop_rate;
  profile.delay = drop_rate / 2.0;
  profile.max_delay_ticks = 2;
  transport.SetChaosProfile(profile);

  double last_time = 0.0;
  for (const stq::WorkloadTick& wt : workload.ticks()) {
    for (const stq::ObjectReport& r : wt.object_reports) {
      server.ReportObject(r.id, r.loc, r.t);
    }
    for (const stq::QueryRegionReport& q : wt.query_moves) {
      server.MoveRangeQuery(q.id, q.region);
    }
    manager.Tick(wt.time);
    last_time = wt.time;
  }

  // Quiesce, then settle a quiet world until everyone is converged.
  transport.SetChaosProfile(stq::ChaosProfile{});
  auto all_converged = [&]() {
    for (stq::ClientId cid = 1; cid <= num_clients; ++cid) {
      const stq::Result<std::vector<stq::ObjectId>> truth =
          server.processor().CurrentAnswer(cid);
      if (!truth.ok()) return false;
      if (sessions[cid - 1]->client().SortedAnswerOf(cid) != *truth) {
        return false;
      }
    }
    return true;
  };
  RunResult result;
  while (result.settle_ticks < 30 && !all_converged()) {
    ++result.settle_ticks;
    manager.Tick(last_time + static_cast<double>(result.settle_ticks));
  }

  for (stq::ClientId cid = 1; cid <= num_clients; ++cid) {
    const stq::Result<std::vector<stq::ObjectId>> truth =
        server.processor().CurrentAnswer(cid);
    if (truth.ok() &&
        sessions[cid - 1]->client().SortedAnswerOf(cid) == *truth) {
      ++result.converged;
    }
  }
  result.sample.transport = transport.counters();
  result.sample.session = manager.counters();
  std::vector<stq::ClientSession*> raw;
  raw.reserve(sessions.size());
  for (auto& s : sessions) raw.push_back(s.get());
  result.sample.clients = stq::SumSessionCounters(raw);
  result.bytes_shipped = server.total_bytes_shipped();
  result.bytes_resident = server.processor().AnswerBytesResident();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t num_objects = stq_bench::EnvSize("STQ_BENCH_OBJECTS", 4000);
  const size_t num_clients = stq_bench::EnvSize("STQ_BENCH_QUERIES", 200);
  const size_t num_ticks =
      stq_bench::EnvSize("STQ_BENCH_RESILIENCE_TICKS", 40);

  stq_bench::BenchReport report("ablation_resilience", argc, argv);
  report.Param("num_objects", num_objects);
  report.Param("num_clients", num_clients);
  report.Param("num_ticks", num_ticks);

  stq::NetworkWorkloadOptions wopts;
  wopts.city.rows = 24;
  wopts.city.cols = 24;
  wopts.num_objects = num_objects;
  wopts.num_queries = num_clients;
  wopts.query_side_length = 0.04;
  wopts.num_ticks = num_ticks;
  wopts.object_update_fraction = 0.3;
  wopts.query_update_fraction = 0.2;
  wopts.seed = 71;
  wopts.route = stq::NetworkGenerator::RouteStrategy::kRandomWalk;
  const stq::Workload workload = stq::Workload::GenerateNetwork(wopts);

  std::printf("Ablation A9: session resilience vs. transport fault rate\n");
  std::printf("objects=%zu clients=%zu ticks=%zu, one range query per "
              "client, delay rate = drop rate / 2\n\n",
              num_objects, num_clients, num_ticks);
  std::printf("%-10s %-6s %10s %10s %9s %12s %8s %10s\n", "drop_rate",
              "policy", "dropped", "resyncs", "gaps", "shipped_KB", "settle",
              "converged");

  for (const double drop_rate : {0.0, 0.01, 0.02, 0.05, 0.1, 0.2}) {
    for (const stq::RecoveryPolicy policy :
         {stq::RecoveryPolicy::kCommittedDiff,
          stq::RecoveryPolicy::kFullAnswer}) {
      const bool diff = policy == stq::RecoveryPolicy::kCommittedDiff;
      const RunResult r = RunOne(workload, num_clients, drop_rate, policy);
      const uint64_t resyncs = r.sample.session.resyncs_served_diff +
                               r.sample.session.resyncs_served_full;
      std::printf("%-10.2f %-6s %10llu %10llu %9llu %12.1f %8llu %6d/%zu\n",
                  drop_rate, diff ? "diff" : "full",
                  static_cast<unsigned long long>(r.sample.transport.dropped),
                  static_cast<unsigned long long>(resyncs),
                  static_cast<unsigned long long>(r.sample.clients.gaps_detected),
                  stq_bench::ToKb(r.bytes_shipped),
                  static_cast<unsigned long long>(r.settle_ticks),
                  r.converged, num_clients);
      report.BeginRow();
      report.Value("drop_rate", drop_rate);
      report.Value("policy", diff ? "diff" : "full");
      stq_bench::ReportResilienceCounters(&report, r.sample);
      report.Value("shipped_kb", stq_bench::ToKb(r.bytes_shipped));
      report.Value("bytes_resident", r.bytes_resident);
      report.Value("settle_ticks", r.settle_ticks);
      report.Value("converged_clients", r.converged);
    }
  }
  return report.Write() ? 0 : 1;
}
