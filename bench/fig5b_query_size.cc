// Figure 5(b): answer size vs. query side length.
//
// "In Figure 5b, the query side length varies from 0.01 to 0.04. The size
// of the complete answer increases dramatically to up to seven times that
// of the incremental result." Overall the paper reports the incremental
// result at around 10% of the complete result.
//
// Expected shape: complete grows ~quadratically with the side length
// (answer cardinality tracks the query area) while the incremental stream
// grows ~linearly (membership churn tracks the query perimeter), so the
// ratio widens as queries grow.

#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  const stq_bench::BenchScale scale = stq_bench::BenchScale::FromEnv();
  constexpr double kUpdateRate = 0.5;

  stq_bench::BenchReport report("fig5b_query_size", argc, argv);
  stq_bench::ReportScale(&report, scale);
  report.Param("object_update_fraction", kUpdateRate);
  report.Param("tick_seconds", 5.0);
  report.Param("seed", 909);

  std::printf("Figure 5(b): answer size vs. query side length\n");
  std::printf("objects=%zu queries=%zu update_rate=%.0f%% T=5s ticks=%zu\n\n",
              scale.num_objects, scale.num_queries, kUpdateRate * 100.0,
              scale.num_ticks);
  std::printf("%-12s %18s %18s %10s\n", "side_length", "incremental_KB",
              "complete_KB", "ratio");

  for (double side = 0.01; side <= 0.0401; side += 0.005) {
    const stq::Workload workload = stq::Workload::GenerateNetwork(
        stq_bench::PaperWorkloadOptions(scale, side, kUpdateRate,
                                        /*seed=*/909));
    stq::QueryProcessorOptions options;
    options.grid_cells_per_side = 64;
    stq::QueryProcessor qp(options);
    workload.ApplyInitial(&qp);
    qp.EvaluateTick(0.0);

    double incremental_kb = 0.0;
    double complete_kb = 0.0;
    stq::TickStats phase_sums;
    for (size_t i = 0; i < workload.ticks().size(); ++i) {
      workload.ApplyTick(&qp, i);
      const stq::TickResult tick = qp.EvaluateTick(workload.ticks()[i].time);
      incremental_kb += stq_bench::ToKb(tick.WireBytes(options.wire_cost));
      complete_kb += stq_bench::ToKb(stq_bench::CompleteAnswerBytes(qp));
      phase_sums.heap_allocations += tick.stats.heap_allocations;
    }
    incremental_kb /= static_cast<double>(workload.ticks().size());
    complete_kb /= static_cast<double>(workload.ticks().size());
    std::printf("%-12.3f %18.1f %18.1f %9.1fx\n", side, incremental_kb,
                complete_kb,
                incremental_kb > 0 ? complete_kb / incremental_kb : 0.0);

    report.BeginRow();
    stq_bench::ReportResilienceCounters(&report);
    report.Value("side_length", side);
    report.Value("incremental_kb", incremental_kb);
    report.Value("complete_kb", complete_kb);
    report.Value("allocs_per_tick",
                 static_cast<double>(phase_sums.heap_allocations) /
                     static_cast<double>(workload.ticks().size()));
  }
  return report.Write() ? 0 : 1;
}
