// Ablation A4 — incremental k-NN maintenance vs. periodic re-evaluation.
//
// A continuous k-NN query is stored as the smallest circle containing its
// k nearest objects; only queries whose circle was disturbed are
// re-evaluated. The baseline recomputes every k-NN query from the grid
// each period (snapshot behaviour). Sweep: object update rate.
// Expected shape: the number of dirty-query re-evaluations (and hence
// latency) tracks the update rate, while the snapshot cost is flat at
// #queries; shipped bytes follow the same pattern as Figure 5(a).

#include <chrono>
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "stq/baseline/snapshot_processor.h"
#include "stq/gen/network_generator.h"
#include "stq/gen/road_network.h"

namespace {
using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}
}  // namespace

int main(int argc, char** argv) {
  const size_t num_objects = stq_bench::EnvSize("STQ_BENCH_OBJECTS", 20000);
  const size_t num_queries = stq_bench::EnvSize("STQ_BENCH_QUERIES", 2000);
  constexpr int kK = 5;
  constexpr int kTicks = 3;

  stq_bench::BenchReport report("ablation_knn", argc, argv);
  report.Param("num_objects", num_objects);
  report.Param("num_queries", num_queries);
  report.Param("k", kK);
  report.Param("num_ticks", kTicks);

  std::printf("Ablation A4: incremental k-NN maintenance (k=%d)\n", kK);
  std::printf("objects=%zu knn_queries=%zu, mean per period over %d "
              "periods\n\n",
              num_objects, num_queries, kTicks);
  std::printf("%-12s %10s %12s %14s %14s\n", "update_rate", "updates",
              "reevals", "incr_ms", "snapshot_ms");

  for (int rate_pct : {1, 2, 5, 10, 30, 60, 90}) {
    stq::RoadNetwork::GridCityOptions city_options;
    city_options.rows = 30;
    city_options.cols = 30;
    const stq::RoadNetwork city =
        stq::RoadNetwork::MakeGridCity(city_options);
    stq::NetworkGenerator::Options object_options;
    object_options.num_objects = num_objects;
    object_options.seed = 7;
    object_options.route = stq::NetworkGenerator::RouteStrategy::kRandomWalk;
    stq::NetworkGenerator objects(&city, object_options);
    stq::NetworkGenerator::Options focal_options;
    focal_options.num_objects = num_queries;
    focal_options.seed = 8;
    focal_options.route = stq::NetworkGenerator::RouteStrategy::kRandomWalk;
    stq::NetworkGenerator focal_points(&city, focal_options);

    stq::QueryProcessorOptions options;
    options.grid_cells_per_side = 64;
    stq::QueryProcessor incremental(options);
    stq::SnapshotProcessor snapshot(options);
    for (const stq::ObjectReport& r : objects.InitialReports(0.0)) {
      incremental.UpsertObject(r.id, r.loc, r.t);
      snapshot.UpsertObject(r.id, r.loc, r.t);
    }
    for (size_t q = 0; q < num_queries; ++q) {
      const stq::Point center = focal_points.LocationOf(q + 1);
      incremental.RegisterKnnQuery(q + 1, center, kK);
      snapshot.RegisterKnnQuery(q + 1, center, kK);
    }
    incremental.EvaluateTick(0.0);

    size_t updates = 0, reevals = 0;
    double incr_ms = 0.0, snap_ms = 0.0;
    for (int tick = 1; tick <= kTicks; ++tick) {
      const double now = tick * 5.0;
      for (const stq::ObjectReport& r :
           objects.Step(now, 5.0, rate_pct / 100.0)) {
        incremental.UpsertObject(r.id, r.loc, r.t);
        snapshot.UpsertObject(r.id, r.loc, r.t);
      }
      for (const stq::ObjectReport& r :
           focal_points.Step(now, 5.0, 0.3)) {
        incremental.MoveKnnQuery(r.id, r.loc);
        snapshot.MoveKnnQuery(r.id, r.loc);
      }

      Clock::time_point start = Clock::now();
      const stq::TickResult result = incremental.EvaluateTick(now);
      incr_ms += MillisSince(start);
      updates += result.updates.size();
      reevals += result.stats.knn_reevaluations;

      start = Clock::now();
      snapshot.EvaluateTick(now);
      snap_ms += MillisSince(start);
    }
    std::printf("%-11d%% %10zu %12zu %14.2f %14.2f\n", rate_pct,
                updates / kTicks, reevals / kTicks, incr_ms / kTicks,
                snap_ms / kTicks);

    report.BeginRow();
    stq_bench::ReportResilienceCounters(&report);
    report.Value("update_rate_pct", rate_pct);
    report.Value("updates_per_tick", updates / kTicks);
    report.Value("reevals_per_tick", reevals / kTicks);
    report.Value("incremental_ms", incr_ms / kTicks);
    report.Value("snapshot_ms", snap_ms / kTicks);
  }
  return report.Write() ? 0 : 1;
}
