// Ablation: adaptive partitioning under skew — uniform grid vs adaptive
// refinement on a Zipf-hotspot world.
//
// The workload is the adaptive layer's reason to exist: objects pile
// onto a handful of drifting Zipf-weighted hotspots, and the monitoring
// queries concentrate on the same hotspots (watchers go where the action
// is). On a uniform coarse grid the hot cells carry most of the
// population AND most of the query stubs, so every object report in a
// hot cell scans a long stub list; with adaptive refinement the hot
// cells split into leaves and each report only tests the stubs clipped
// into its leaf.
//
// Rows sweep the engine configuration over the same pre-rolled workload:
// uniform baseline, adaptive single-shard, and adaptive sharded with
// online rebalance. The stream CRC must agree across every row — the
// differential battery (ctest -L skew) pins byte-identity at unit scale,
// this bench re-checks it at benchmark scale while measuring the payoff.
//
// --assert-speedup is the CI perf-smoke gate: adaptive must beat the
// uniform grid by >= 1.3x ticks/sec on this workload. The comparison is
// single-threaded and single-shard on both sides, so it holds on a
// single-core host (unlike the shard-scaling gate, which needs parallel
// hardware).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "stq/common/crc32.h"
#include "stq/gen/skewed_generator.h"

namespace {

struct EngineConfig {
  const char* name;
  bool adaptive = false;
  int shards = 1;
  bool rebalance = false;
};

struct RunResult {
  double seconds = 0.0;      // total EvaluateTick wall time
  double removals = 0.0;
  double upserts = 0.0;
  double match = 0.0;
  double apply = 0.0;
  double qpass = 0.0;
  double adapt_seconds = 0.0;
  double rebalance_seconds = 0.0;
  size_t cells_split = 0;
  size_t cells_merged = 0;
  size_t rebalances = 0;
  uint32_t stream_crc = 0;
  size_t ticks = 0;
  uint64_t allocs = 0;
  size_t bytes_resident = 0;  // last tick's resident answer bytes
};

RunResult RunWorkload(const stq::Workload& workload,
                      const EngineConfig& config) {
  stq::QueryProcessorOptions options;
  // Deliberately coarse: the hot cells are overloaded until the adaptive
  // layer splits them.
  options.grid_cells_per_side = 8;
  options.num_shards = config.shards;
  options.worker_threads = 1;
  // Pin the legacy per-candidate match loop on every row: this ablation
  // isolates grid refinement's candidate filtering, and the batch path
  // flattens the same hot-cell stub scan (it lifted the *uniform* row
  // ~2x when it became the default, compressing the measured adaptive
  // payoff to ~1.2x without changing what refinement does). The batch
  // restructuring has its own ablation (ablation_batch); streams are
  // byte-identical either way.
  options.batch_evaluation = false;
  if (config.adaptive) {
    options.adaptive.enabled = true;
    options.adaptive.split_threshold = 32;
    options.adaptive.merge_threshold = 12;
    options.adaptive.max_level = 4;
    options.adaptive.cooldown_ticks = 2;
    options.adaptive.rebalance = config.rebalance && config.shards > 1;
    options.adaptive.rebalance_cooldown_ticks = 3;
    options.adaptive.rebalance_imbalance = 1.2;
  }
  stq::QueryProcessor qp(options);
  workload.ApplyInitial(&qp);
  qp.EvaluateTick(0.0);  // drain the initial load outside the timed region

  // Steady-state measurement: the first few ticks are warmup (the
  // refiner descends one level per cooldown window, so the adaptive
  // structure needs a handful of ticks to converge; the uniform engine
  // is in steady state from tick one either way).
  const size_t warmup = std::min<size_t>(4, workload.ticks().size() / 2);
  RunResult result;
  std::string stream;
  for (size_t i = 0; i < workload.ticks().size(); ++i) {
    workload.ApplyTick(&qp, i);
    const bool timed = i >= warmup;
    const auto start = std::chrono::steady_clock::now();
    const stq::TickResult tick = qp.EvaluateTick(workload.ticks()[i].time);
    if (timed) {
      result.seconds += std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    }
    result.removals += tick.stats.removals_seconds;
    result.upserts += tick.stats.upserts_seconds;
    result.match += tick.stats.object_match_seconds;
    result.apply += tick.stats.object_apply_seconds;
    result.qpass += tick.stats.query_pass_seconds;
    result.adapt_seconds += tick.stats.adapt_seconds;
    result.rebalance_seconds += tick.stats.rebalance_seconds;
    result.cells_split += tick.stats.cells_split;
    result.cells_merged += tick.stats.cells_merged;
    result.rebalances += tick.stats.shard_rebalances;
    result.allocs += tick.stats.heap_allocations;
    result.bytes_resident = tick.stats.bytes_resident;
    stream.clear();
    for (const stq::Update& u : tick.updates) {
      stream += u.DebugString();
      stream += '\n';
    }
    result.stream_crc = stq::Crc32c(stream.data(), stream.size()) ^
                        (result.stream_crc * 31);
    if (timed) ++result.ticks;
  }
  return result;
}

// The Zipf-hotspot workload with hotspot-following queries: object
// movement comes from SkewedGenerator; each query is pinned near a
// Zipf-chosen hotspot (watchers crowd the busy spots the same way the
// watched do).
stq::Workload MakeSkewWorkload(const stq_bench::BenchScale& scale,
                               uint64_t seed) {
  stq::SkewedGenerator::Options gen_options;
  gen_options.scenario = stq::SkewedGenerator::Scenario::kZipfHotspot;
  gen_options.num_objects = scale.num_objects;
  gen_options.seed = seed;
  gen_options.num_hotspots = 4;
  gen_options.zipf_s = 1.5;
  gen_options.hotspot_sigma = 0.02;
  gen_options.hotspot_drift = 0.002;
  gen_options.speed = 0.001;
  stq::SkewedGenerator gen(gen_options);

  std::vector<stq::ObjectReport> initial_objects = gen.InitialReports(0.0);

  stq::Xorshift128Plus qrng(seed ^ 0x9E3779B97F4A7C15ull);
  const double half = 0.01;  // query side 0.02
  std::vector<stq::QueryRegionReport> initial_queries;
  initial_queries.reserve(scale.num_queries);
  for (size_t i = 0; i < scale.num_queries; ++i) {
    stq::Point c;
    if (qrng.NextBool(0.8)) {
      // Zipf-weighted hotspot pick mirroring the object law.
      double norm = 0.0;
      for (size_t k = 0; k < gen_options.num_hotspots; ++k) {
        norm += std::pow(static_cast<double>(k + 1), -gen_options.zipf_s);
      }
      const double u = qrng.NextDouble(0.0, norm);
      double acc = 0.0;
      size_t pick = gen_options.num_hotspots - 1;
      for (size_t k = 0; k < gen_options.num_hotspots; ++k) {
        acc += std::pow(static_cast<double>(k + 1), -gen_options.zipf_s);
        if (u <= acc) {
          pick = k;
          break;
        }
      }
      const stq::Point& h = gen.hotspots()[pick];
      c = stq::Point{h.x + 0.04 * qrng.NextGaussian(),
                     h.y + 0.04 * qrng.NextGaussian()};
    } else {
      c = stq::Point{qrng.NextDouble(), qrng.NextDouble()};
    }
    c.x = std::clamp(c.x, 0.0, 1.0);
    c.y = std::clamp(c.y, 0.0, 1.0);
    initial_queries.push_back(stq::QueryRegionReport{
        static_cast<stq::QueryId>(i + 1),
        stq::Rect{c.x - half, c.y - half, c.x + half, c.y + half}, 0.0});
  }

  std::vector<stq::WorkloadTick> ticks;
  ticks.reserve(scale.num_ticks);
  for (size_t k = 1; k <= scale.num_ticks; ++k) {
    stq::WorkloadTick tick;
    tick.time = static_cast<double>(k) * 5.0;
    tick.object_reports = gen.Step(tick.time, 5.0, /*update_fraction=*/0.5);
    ticks.push_back(std::move(tick));
  }
  return stq::Workload::FromParts(std::move(initial_objects),
                                  std::move(initial_queries),
                                  std::move(ticks), 5.0);
}

// Hot-cold migration workload: the whole population piles onto ONE
// drifting hotspot, so whichever shard owns the hotspot carries ~all of
// the home-shard load (max/mean approaches the shard count — far past
// any sane rebalance_imbalance gate), and the drift keeps relocating
// the mass so the quantile cuts have to chase it. This is the scenario
// that actually trips the online rebalancer at bench scale; the Zipf
// table above stays balanced enough that it never fires.
stq::Workload MakeHotColdWorkload(const stq_bench::BenchScale& scale,
                                  uint64_t seed) {
  stq::SkewedGenerator::Options gen_options;
  gen_options.scenario = stq::SkewedGenerator::Scenario::kZipfHotspot;
  gen_options.num_objects = scale.num_objects;
  gen_options.seed = seed;
  gen_options.num_hotspots = 1;
  gen_options.hotspot_sigma = 0.02;
  gen_options.hotspot_drift = 0.01;  // 0.05/tick at T=5s: cuts must chase
  gen_options.speed = 0.001;
  stq::SkewedGenerator gen(gen_options);

  std::vector<stq::ObjectReport> initial_objects = gen.InitialReports(0.0);

  stq::Xorshift128Plus qrng(seed ^ 0xD1B54A32D192ED03ull);
  const double half = 0.01;  // query side 0.02
  std::vector<stq::QueryRegionReport> initial_queries;
  initial_queries.reserve(scale.num_queries);
  for (size_t i = 0; i < scale.num_queries; ++i) {
    stq::Point c{qrng.NextDouble(), qrng.NextDouble()};
    initial_queries.push_back(stq::QueryRegionReport{
        static_cast<stq::QueryId>(i + 1),
        stq::Rect{c.x - half, c.y - half, c.x + half, c.y + half}, 0.0});
  }

  std::vector<stq::WorkloadTick> ticks;
  ticks.reserve(scale.num_ticks);
  for (size_t k = 1; k <= scale.num_ticks; ++k) {
    stq::WorkloadTick tick;
    tick.time = static_cast<double>(k) * 5.0;
    tick.object_reports = gen.Step(tick.time, 5.0, /*update_fraction=*/0.5);
    ticks.push_back(std::move(tick));
  }
  return stq::Workload::FromParts(std::move(initial_objects),
                                  std::move(initial_queries),
                                  std::move(ticks), 5.0);
}

}  // namespace

int main(int argc, char** argv) {
  stq_bench::BenchScale scale = stq_bench::BenchScale::FromEnv();
  bool assert_speedup = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--assert-speedup") == 0) assert_speedup = true;
  }

  stq_bench::BenchReport report("ablation_skew", argc, argv);
  stq_bench::ReportScale(&report, scale);
  report.Param("scenario", "zipf_hotspot");
  report.Param("num_hotspots", 4);
  report.Param("zipf_s", 1.5);
  report.Param("grid_cells_per_side", 8);
  report.Param("seed", 707);

  std::printf("Ablation: adaptive partitioning on a Zipf-hotspot world\n");
  std::printf(
      "objects=%zu queries=%zu ticks=%zu, 8x8 base grid, "
      "hotspot-following queries\n\n",
      scale.num_objects, scale.num_queries, scale.num_ticks);

  const stq::Workload workload = MakeSkewWorkload(scale, /*seed=*/707);

  const EngineConfig kConfigs[] = {
      {"uniform", /*adaptive=*/false, /*shards=*/1},
      {"adaptive", /*adaptive=*/true, /*shards=*/1},
      {"adaptive+2shards", /*adaptive=*/true, /*shards=*/2,
       /*rebalance=*/true},
  };

  std::printf("%-18s %12s %10s %8s %8s %6s %10s %12s %12s\n", "engine",
              "ticks/sec", "speedup", "splits", "merges", "rebal",
              "adapt_s", "allocs/tick", "stream_crc");

  double uniform_seconds = 0.0;
  double adaptive_speedup = 0.0;
  uint32_t uniform_crc = 0;
  bool crc_mismatch = false;
  for (const EngineConfig& config : kConfigs) {
    const RunResult r = RunWorkload(workload, config);
    if (std::strcmp(config.name, "uniform") == 0) {
      uniform_seconds = r.seconds;
      uniform_crc = r.stream_crc;
    } else if (r.stream_crc != uniform_crc) {
      crc_mismatch = true;
    }
    const double ticks_per_sec =
        r.seconds > 0 ? static_cast<double>(r.ticks) / r.seconds : 0.0;
    const double speedup = r.seconds > 0 ? uniform_seconds / r.seconds : 0.0;
    if (std::strcmp(config.name, "adaptive") == 0) {
      adaptive_speedup = speedup;
    }
    const double allocs_per_tick =
        r.ticks > 0 ? static_cast<double>(r.allocs) / r.ticks : 0.0;
    std::printf(
        "%-18s %12.2f %9.2fx %8zu %8zu %6zu %10.4f %12.1f   0x%08x\n",
        config.name, ticks_per_sec, speedup, r.cells_split, r.cells_merged,
        r.rebalances, r.adapt_seconds, allocs_per_tick, r.stream_crc);
    std::printf(
        "  phases: removals=%.3f upserts=%.3f match=%.3f apply=%.3f "
        "qpass=%.3f\n",
        r.removals, r.upserts, r.match, r.apply, r.qpass);

    report.BeginRow();
    report.Value("engine", config.name);
    report.Value("shards", config.shards);
    report.Value("ticks_per_sec", ticks_per_sec);
    report.Value("speedup", speedup);
    report.Value("cells_split", r.cells_split);
    report.Value("cells_merged", r.cells_merged);
    report.Value("rebalances", r.rebalances);
    report.Value("adapt_seconds", r.adapt_seconds);
    report.Value("rebalance_seconds", r.rebalance_seconds);
    report.Value("allocs_per_tick", allocs_per_tick);
    report.Value("bytes_resident", r.bytes_resident);
    report.Value("stream_crc", r.stream_crc);
  }

  if (crc_mismatch) {
    std::printf("\nFAIL: update streams diverged across engines\n");
    return 1;
  }
  std::printf("\nupdate streams byte-identical across all engines\n");

  // --- Hot-cold migration: the rebalancer-gate scenario -------------------
  std::printf(
      "\nHot-cold migration (1 drifting hotspot, whole population): "
      "static 2-shard split vs online rebalance\n");
  const stq::Workload hotcold = MakeHotColdWorkload(scale, /*seed=*/808);
  const EngineConfig kHotColdConfigs[] = {
      {"hotcold-static", /*adaptive=*/true, /*shards=*/2,
       /*rebalance=*/false},
      {"hotcold-rebalance", /*adaptive=*/true, /*shards=*/2,
       /*rebalance=*/true},
  };
  double static_seconds = 0.0;
  uint32_t static_crc = 0;
  size_t hotcold_rebalances = 0;
  for (const EngineConfig& config : kHotColdConfigs) {
    const RunResult r = RunWorkload(hotcold, config);
    if (std::strcmp(config.name, "hotcold-static") == 0) {
      static_seconds = r.seconds;
      static_crc = r.stream_crc;
    } else {
      hotcold_rebalances = r.rebalances;
      if (r.stream_crc != static_crc) {
        std::printf("FAIL: hot-cold streams diverged across engines\n");
        return 1;
      }
    }
    const double ticks_per_sec =
        r.seconds > 0 ? static_cast<double>(r.ticks) / r.seconds : 0.0;
    const double speedup = r.seconds > 0 ? static_seconds / r.seconds : 0.0;
    const double allocs_per_tick =
        r.ticks > 0 ? static_cast<double>(r.allocs) / r.ticks : 0.0;
    std::printf(
        "%-18s %12.2f %9.2fx %8zu %8zu %6zu %10.4f %12.1f   0x%08x\n",
        config.name, ticks_per_sec, speedup, r.cells_split, r.cells_merged,
        r.rebalances, r.adapt_seconds, allocs_per_tick, r.stream_crc);

    report.BeginRow();
    report.Value("engine", config.name);
    report.Value("shards", config.shards);
    report.Value("ticks_per_sec", ticks_per_sec);
    report.Value("speedup", speedup);
    report.Value("cells_split", r.cells_split);
    report.Value("cells_merged", r.cells_merged);
    report.Value("rebalances", r.rebalances);
    report.Value("adapt_seconds", r.adapt_seconds);
    report.Value("rebalance_seconds", r.rebalance_seconds);
    report.Value("allocs_per_tick", allocs_per_tick);
    report.Value("bytes_resident", r.bytes_resident);
    report.Value("stream_crc", r.stream_crc);
  }
  // The point of the scenario: the imbalance gate must actually fire.
  // Deterministic (fixed seed, no timing dependence), so checked
  // unconditionally.
  if (hotcold_rebalances == 0) {
    std::printf("FAIL: hot-cold migration tripped zero shard rebalances\n");
    return 1;
  }
  std::printf("hot-cold migration tripped %zu shard rebalances\n",
              hotcold_rebalances);

  // --assert-speedup: the CI gate for the adaptive layer's payoff. The
  // 1.3x floor sits well under the typical margin on this workload so
  // runner noise does not flake it, while an adaptive-layer regression
  // to parity still fails.
  if (assert_speedup) {
    if (adaptive_speedup < 1.3) {
      std::printf("FAIL: adaptive speedup %.2fx below required 1.30x\n",
                  adaptive_speedup);
      return 1;
    }
    std::printf("assert-speedup: passed (adaptive %.2fx over uniform)\n",
                adaptive_speedup);
  }
  return report.Write() ? 0 : 1;
}
