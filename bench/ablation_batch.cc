// Ablation: data-oriented batch evaluation — SoA candidate batches,
// vectorized predicate kernels, compressed answer sets.
//
// Three rows over the paper's fig-5a network workload, all
// single-threaded (1 shard, 1 worker) so the rows isolate the batch
// restructuring rather than parallelism:
//
//   prebatch      per-candidate pointer-chasing loops
//                 (batch_evaluation = false)
//   batch-scalar  SoA gather + scalar kernels
//                 (batch_evaluation = true, dispatch pinned scalar)
//   batch-simd    SoA gather + AVX2/NEON kernels
//                 (only when the SIMD path is live on this host)
//
// The canonical update stream CRC must agree across all rows — the
// batch paths are byte-identical by construction (the differential
// tests pin the same property; this bench re-checks it at benchmark
// scale). `--assert-speedup` is the CI perf-smoke gate: the batch path
// must beat prebatch by >= 1.3x on ticks/sec.
//
// A second section measures the compressed answer-set representation on
// a dense-range workload (few queries covering most of the universe, so
// answers are dense in id space): resident answer bytes under the
// blocked/bitmap codec vs the FlatSet-equivalent footprint the engine
// shipped before. `--assert-speedup` also gates compression >= 2x there.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "stq/common/crc32.h"
#include "stq/common/random.h"
#include "stq/core/match_kernels.h"

namespace {

struct RunResult {
  double seconds = 0.0;     // total EvaluateTick wall time
  uint32_t stream_crc = 0;  // CRC32 of all canonical update streams
  size_t ticks = 0;
  uint64_t allocs = 0;
  size_t bytes_resident = 0;  // last tick's resident answer bytes
};

RunResult RunWorkload(const stq::Workload& workload, bool batch) {
  stq::QueryProcessorOptions options;
  options.grid_cells_per_side = 64;
  options.batch_evaluation = batch;
  stq::QueryProcessor qp(options);
  workload.ApplyInitial(&qp);
  qp.EvaluateTick(0.0);  // drain the initial load outside the timed region

  RunResult result;
  std::string stream;
  for (size_t i = 0; i < workload.ticks().size(); ++i) {
    workload.ApplyTick(&qp, i);
    const auto start = std::chrono::steady_clock::now();
    const stq::TickResult tick = qp.EvaluateTick(workload.ticks()[i].time);
    result.seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    result.allocs += tick.stats.heap_allocations;
    result.bytes_resident = tick.stats.bytes_resident;
    stream.clear();
    for (const stq::Update& u : tick.updates) {
      stream += u.DebugString();
      stream += '\n';
    }
    result.stream_crc = stq::Crc32c(stream.data(), stream.size()) ^
                        (result.stream_crc * 31);
    ++result.ticks;
  }
  return result;
}

// Resident bytes the pre-codec engine would hold for an answer of
// cardinality `n`: a FlatSet<ObjectId> slab of `cap` power-of-two slots
// at <= 3/4 load, 8 id bytes + 1 state byte per slot (flat_hash.h).
size_t FlatSetEquivalentBytes(size_t n) {
  if (n == 0) return 0;
  size_t cap = 8;  // FlatTable kMinCapacity
  while (n * 4 > cap * 3) cap <<= 1;
  return cap * (sizeof(stq::ObjectId) + 1);
}

}  // namespace

int main(int argc, char** argv) {
  stq_bench::BenchScale scale = stq_bench::BenchScale::FromEnv();
  scale.num_queries = stq_bench::EnvSize("STQ_BENCH_QUERIES", 10000);
  bool assert_speedup = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--assert-speedup") == 0) assert_speedup = true;
  }

  stq_bench::BenchReport report("ablation_batch", argc, argv);
  stq_bench::ReportScale(&report, scale);
  report.Param("query_side_length", 0.02);
  report.Param("object_update_fraction", 0.5);
  report.Param("seed", 5150);
  report.Param("simd_available", stq::MatchKernels::SimdAvailable() ? 1 : 0);

  std::printf("Ablation: data-oriented batch evaluation (single-threaded)\n");
  std::printf("objects=%zu queries=%zu T=5s ticks=%zu (fig-5a workload)\n\n",
              scale.num_objects, scale.num_queries, scale.num_ticks);

  const stq::Workload workload = stq::Workload::GenerateNetwork(
      stq_bench::PaperWorkloadOptions(scale, /*query_side=*/0.02,
                                      /*object_update_fraction=*/0.5,
                                      /*seed=*/5150));

  std::printf("%-14s %12s %10s %14s %14s %12s\n", "mode", "ticks/sec",
              "speedup", "allocs/tick", "resident_KB", "stream_crc");

  struct Mode {
    const char* name;
    bool batch;
    bool force_scalar;
  };
  std::vector<Mode> modes = {{"prebatch", false, false},
                             {"batch-scalar", true, true}};
  if (stq::MatchKernels::SimdAvailable()) {
    modes.push_back({"batch-simd", true, false});
  }

  double prebatch_seconds = 0.0;
  double best_batch_seconds = 0.0;
  uint32_t first_crc = 0;
  bool crc_mismatch = false;
  for (size_t m = 0; m < modes.size(); ++m) {
    stq::MatchKernels::ForceScalar(modes[m].force_scalar);
    const RunResult r = RunWorkload(workload, modes[m].batch);
    stq::MatchKernels::ForceScalar(false);
    if (m == 0) {
      prebatch_seconds = r.seconds;
      first_crc = r.stream_crc;
    } else {
      if (r.stream_crc != first_crc) crc_mismatch = true;
      if (best_batch_seconds == 0.0 || r.seconds < best_batch_seconds) {
        best_batch_seconds = r.seconds;
      }
    }
    const double ticks_per_sec =
        r.seconds > 0 ? static_cast<double>(r.ticks) / r.seconds : 0.0;
    const double speedup = r.seconds > 0 ? prebatch_seconds / r.seconds : 0.0;
    const double allocs_per_tick =
        r.ticks > 0 ? static_cast<double>(r.allocs) / r.ticks : 0.0;
    std::printf("%-14s %12.2f %9.2fx %14.1f %14.1f   0x%08x\n", modes[m].name,
                ticks_per_sec, speedup, allocs_per_tick,
                stq_bench::ToKb(r.bytes_resident), r.stream_crc);

    report.BeginRow();
    stq_bench::ReportResilienceCounters(&report);
    report.Value("mode", modes[m].name);
    report.Value("ticks_per_sec", ticks_per_sec);
    report.Value("speedup", speedup);
    report.Value("allocs_per_tick", allocs_per_tick);
    report.Value("bytes_resident", r.bytes_resident);
    report.Value("stream_crc", r.stream_crc);
  }

  if (crc_mismatch) {
    std::printf("\nFAIL: update streams diverged across evaluation modes\n");
    return 1;
  }
  std::printf("\nupdate streams byte-identical across all modes\n");

  // --- Compressed answer sets on a dense-range workload ------------------
  // A handful of near-universe range queries over many objects: each
  // answer holds most of the id space, so the codec's dense bitmap
  // blocks carry the footprint.
  const size_t dense_objects = stq_bench::EnvSize("STQ_BENCH_OBJECTS", 100000);
  stq::QueryProcessorOptions dense_options;
  dense_options.grid_cells_per_side = 64;
  stq::QueryProcessor dense_qp(dense_options);
  stq::Xorshift128Plus rng(5150);
  for (stq::ObjectId id = 1; id <= dense_objects; ++id) {
    (void)dense_qp.UpsertObject(
        id, stq::Point{rng.NextDouble(), rng.NextDouble()}, 0.0);
  }
  for (stq::QueryId qid = 1; qid <= 16; ++qid) {
    (void)dense_qp.RegisterRangeQuery(
        qid, stq::Rect{0.01, 0.01, 0.95, 0.95});
  }
  (void)dense_qp.EvaluateTick(1.0);
  const size_t compressed_bytes = dense_qp.AnswerBytesResident();
  size_t flatset_bytes = 0;
  dense_qp.ForEachQueryInfo([&](const stq::QueryProcessor::QueryInfo& q) {
    flatset_bytes += FlatSetEquivalentBytes(q.answer_size);
  });
  const double compression =
      compressed_bytes > 0
          ? static_cast<double>(flatset_bytes) / compressed_bytes
          : 0.0;
  std::printf(
      "\ncompressed answer sets (dense-range workload, %zu objects x 16 "
      "queries):\n  resident %.1f KB vs FlatSet-equivalent %.1f KB "
      "(%.1fx smaller)\n",
      dense_objects, stq_bench::ToKb(compressed_bytes),
      stq_bench::ToKb(flatset_bytes), compression);
  report.Param("dense_compressed_bytes", compressed_bytes);
  report.Param("dense_flatset_bytes", flatset_bytes);
  report.Param("dense_compression", compression);

  // --assert-speedup: the CI perf-smoke gate. 1.3x carries slack below
  // the expected batch-path shape so runner noise does not flake it,
  // while a regression to per-candidate dispatch still fails.
  if (assert_speedup) {
    const double speedup =
        best_batch_seconds > 0 ? prebatch_seconds / best_batch_seconds : 0.0;
    bool ok = true;
    if (speedup < 1.3) {
      std::printf("FAIL: batch speedup %.2fx below required 1.30x\n", speedup);
      ok = false;
    }
    if (compression < 2.0) {
      std::printf("FAIL: dense compression %.1fx below required 2.0x\n",
                  compression);
      ok = false;
    }
    if (!ok) return 1;
    std::printf("assert-speedup: passed (batch %.2fx, compression %.1fx)\n",
                speedup, compression);
  }
  return report.Write() ? 0 : 1;
}
