// Ablation A1 — shared execution vs. per-query evaluation.
//
// The paper's first scalability claim: treating all concurrent queries as
// data in one shared grid and bulk-evaluating only the *changes* scales to
// large numbers of outstanding continuous queries, while re-evaluating
// every query as an individual snapshot query (SnapshotProcessor) or
// probing a query index with every object every period (Q-index) pays the
// full evaluation cost per period regardless of change.
//
// Sweep: number of concurrent stationary queries; fixed object population
// with 30% reporting per period. Reported: mean wall-clock per evaluation
// period. Expected shape: the incremental engine's cost tracks the number
// of *changes* (flat-ish in #queries); both baselines grow with #queries
// or #objects x index size.

#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "stq/baseline/qindex_processor.h"
#include "stq/baseline/snapshot_processor.h"

namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  stq_bench::BenchScale scale = stq_bench::BenchScale::FromEnv();
  const size_t num_objects =
      stq_bench::EnvSize("STQ_BENCH_OBJECTS", 20000);
  const size_t max_queries =
      stq_bench::EnvSize("STQ_BENCH_QUERIES", 64000);
  scale.num_objects = num_objects;
  scale.num_ticks = 3;

  stq_bench::BenchReport report("ablation_scalability", argc, argv);
  report.Param("num_objects", num_objects);
  report.Param("max_queries", max_queries);
  report.Param("num_ticks", scale.num_ticks);
  report.Param("query_side_length", 0.02);
  report.Param("object_update_fraction", 0.3);

  std::printf("Ablation A1: shared incremental vs. per-query evaluation\n");
  std::printf("objects=%zu (30%% report/period), stationary queries, "
              "side=0.02, mean ms per period over %zu periods\n\n",
              num_objects, scale.num_ticks);
  std::printf("%-10s %16s %16s %16s\n", "queries", "incremental_ms",
              "snapshot_ms", "qindex_ms");

  for (size_t num_queries = 1000; num_queries <= max_queries;
       num_queries *= 4) {
    scale.num_queries = num_queries;
    stq::NetworkWorkloadOptions workload_options =
        stq_bench::PaperWorkloadOptions(scale, 0.02, 0.3, /*seed=*/17);
    workload_options.moving_query_fraction = 0.0;  // Q-index needs stationary
    const stq::Workload workload =
        stq::Workload::GenerateNetwork(workload_options);

    stq::QueryProcessorOptions options;
    options.grid_cells_per_side = 64;
    stq::QueryProcessor incremental(options);
    stq::SnapshotProcessor snapshot(options);
    stq::QIndexProcessor qindex;
    workload.ApplyInitial(&incremental);
    workload.ApplyInitial(&snapshot);
    for (const stq::ObjectReport& r : workload.initial_objects()) {
      qindex.UpsertObject(r.id, r.loc, r.t);
    }
    for (const stq::QueryRegionReport& q : workload.initial_queries()) {
      qindex.RegisterRangeQuery(q.id, q.region);
    }
    incremental.EvaluateTick(0.0);

    double incremental_ms = 0.0, snapshot_ms = 0.0, qindex_ms = 0.0;
    for (size_t i = 0; i < workload.ticks().size(); ++i) {
      const double now = workload.ticks()[i].time;
      workload.ApplyTick(&incremental, i);
      workload.ApplyTick(&snapshot, i);
      for (const stq::ObjectReport& r : workload.ticks()[i].object_reports) {
        qindex.UpsertObject(r.id, r.loc, r.t);
      }

      Clock::time_point start = Clock::now();
      incremental.EvaluateTick(now);
      incremental_ms += MillisSince(start);

      start = Clock::now();
      snapshot.EvaluateTick(now);
      snapshot_ms += MillisSince(start);

      start = Clock::now();
      qindex.EvaluateTick(now);
      qindex_ms += MillisSince(start);
    }
    const double n = static_cast<double>(workload.ticks().size());
    std::printf("%-10zu %16.2f %16.2f %16.2f\n", num_queries,
                incremental_ms / n, snapshot_ms / n, qindex_ms / n);

    report.BeginRow();
    stq_bench::ReportResilienceCounters(&report);
    report.Value("num_queries", num_queries);
    report.Value("incremental_ms", incremental_ms / n);
    report.Value("snapshot_ms", snapshot_ms / n);
    report.Value("qindex_ms", qindex_ms / n);
  }
  return report.Write() ? 0 : 1;
}
