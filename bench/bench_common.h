// Shared plumbing for the benchmark binaries: scale selection via
// environment variables, workload construction, and table formatting.
//
// Every figure-reproduction binary prints the series the paper reports.
// Default scale matches the paper (100K moving objects, 100K moving
// queries, T = 5 s); set STQ_BENCH_OBJECTS / STQ_BENCH_QUERIES /
// STQ_BENCH_TICKS to shrink for quick runs.

#ifndef STQ_BENCH_BENCH_COMMON_H_
#define STQ_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "stq/core/query_processor.h"
#include "stq/gen/workload.h"

namespace stq_bench {

inline size_t EnvSize(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  const long long parsed = std::atoll(value);
  return parsed > 0 ? static_cast<size_t>(parsed) : fallback;
}

struct BenchScale {
  size_t num_objects = 100000;
  size_t num_queries = 100000;
  size_t num_ticks = 4;

  static BenchScale FromEnv() {
    BenchScale scale;
    scale.num_objects = EnvSize("STQ_BENCH_OBJECTS", scale.num_objects);
    scale.num_queries = EnvSize("STQ_BENCH_QUERIES", scale.num_queries);
    scale.num_ticks = EnvSize("STQ_BENCH_TICKS", scale.num_ticks);
    return scale;
  }
};

// The paper's evaluation setup: network-based moving objects and moving
// square queries, evaluated every 5 seconds. Random-walk routing keeps
// workload generation cheap at 100K scale without changing the movement
// statistics that matter (road-constrained, skewed, slow relative to the
// city).
inline stq::NetworkWorkloadOptions PaperWorkloadOptions(
    const BenchScale& scale, double query_side, double object_update_fraction,
    uint64_t seed) {
  stq::NetworkWorkloadOptions options;
  // A dense city: road spacing (~0.02) below the query sizes swept in
  // Figure 5(b), so answer cardinality scales with query area as in the
  // paper's Oldenburg workload.
  options.city.rows = 50;
  options.city.cols = 50;
  options.city.seed = seed;
  options.num_objects = scale.num_objects;
  options.num_queries = scale.num_queries;
  options.query_side_length = query_side;
  options.moving_query_fraction = 1.0;
  options.tick_seconds = 5.0;
  options.num_ticks = scale.num_ticks;
  options.object_update_fraction = object_update_fraction;
  options.query_update_fraction = 0.1;
  options.seed = seed;
  options.route = stq::NetworkGenerator::RouteStrategy::kRandomWalk;
  return options;
}

// Bytes a complete-answer server would ship this period: every query's
// full current answer. Computed from the (verified-correct) incremental
// engine state so size comparisons use identical answers.
inline size_t CompleteAnswerBytes(const stq::QueryProcessor& qp) {
  size_t total = 0;
  const stq::WireCostModel& cost = qp.options().wire_cost;
  qp.ForEachQueryInfo([&](const stq::QueryProcessor::QueryInfo& q) {
    total += cost.CompleteAnswerBytes(q.answer_size);
  });
  return total;
}

inline double ToKb(size_t bytes) { return static_cast<double>(bytes) / 1024.0; }

}  // namespace stq_bench

#endif  // STQ_BENCH_BENCH_COMMON_H_
