// Shared plumbing for the benchmark binaries: scale selection via
// environment variables, workload construction, and table formatting.
//
// Every figure-reproduction binary prints the series the paper reports.
// Default scale matches the paper (100K moving objects, 100K moving
// queries, T = 5 s); set STQ_BENCH_OBJECTS / STQ_BENCH_QUERIES /
// STQ_BENCH_TICKS to shrink for quick runs.

#ifndef STQ_BENCH_BENCH_COMMON_H_
#define STQ_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "stq/core/query_processor.h"
#include "stq/core/session.h"
#include "stq/core/transport.h"
#include "stq/gen/workload.h"

namespace stq_bench {

inline size_t EnvSize(const char* name, size_t fallback) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once at bench startup
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  const long long parsed = std::atoll(value);
  return parsed > 0 ? static_cast<size_t>(parsed) : fallback;
}

struct BenchScale {
  size_t num_objects = 100000;
  size_t num_queries = 100000;
  size_t num_ticks = 4;

  static BenchScale FromEnv() {
    BenchScale scale;
    scale.num_objects = EnvSize("STQ_BENCH_OBJECTS", scale.num_objects);
    scale.num_queries = EnvSize("STQ_BENCH_QUERIES", scale.num_queries);
    scale.num_ticks = EnvSize("STQ_BENCH_TICKS", scale.num_ticks);
    return scale;
  }
};

// The paper's evaluation setup: network-based moving objects and moving
// square queries, evaluated every 5 seconds. Random-walk routing keeps
// workload generation cheap at 100K scale without changing the movement
// statistics that matter (road-constrained, skewed, slow relative to the
// city).
inline stq::NetworkWorkloadOptions PaperWorkloadOptions(
    const BenchScale& scale, double query_side, double object_update_fraction,
    uint64_t seed) {
  stq::NetworkWorkloadOptions options;
  // A dense city: road spacing (~0.02) below the query sizes swept in
  // Figure 5(b), so answer cardinality scales with query area as in the
  // paper's Oldenburg workload.
  options.city.rows = 50;
  options.city.cols = 50;
  options.city.seed = seed;
  options.num_objects = scale.num_objects;
  options.num_queries = scale.num_queries;
  options.query_side_length = query_side;
  options.moving_query_fraction = 1.0;
  options.tick_seconds = 5.0;
  options.num_ticks = scale.num_ticks;
  options.object_update_fraction = object_update_fraction;
  options.query_update_fraction = 0.1;
  options.seed = seed;
  options.route = stq::NetworkGenerator::RouteStrategy::kRandomWalk;
  return options;
}

// Bytes a complete-answer server would ship this period: every query's
// full current answer. Computed from the (verified-correct) incremental
// engine state so size comparisons use identical answers.
inline size_t CompleteAnswerBytes(const stq::QueryProcessor& qp) {
  size_t total = 0;
  const stq::WireCostModel& cost = qp.options().wire_cost;
  qp.ForEachQueryInfo([&](const stq::QueryProcessor::QueryInfo& q) {
    total += cost.CompleteAnswerBytes(q.answer_size);
  });
  return total;
}

inline double ToKb(size_t bytes) { return static_cast<double>(bytes) / 1024.0; }

// Machine-readable results: every benchmark binary accepts
// `--json <path>` (or `--json=<path>`) and mirrors its printed series
// into a JSON document of the form
//
//   {"bench": <name>, "params": {...}, "rows": [{...}, ...]}
//
// `params` holds the workload configuration, one `rows` entry per table
// line (sweep point). Nothing is written unless the flag is present, so
// the interactive table output stays the default.
class BenchReport {
 public:
  BenchReport(const char* name, int argc, char** argv) : name_(name) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--json" && i + 1 < argc) {
        path_ = argv[++i];
      } else if (arg.rfind("--json=", 0) == 0) {
        path_ = arg.substr(7);
      }
    }
  }

  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  ~BenchReport() { Write(); }

  bool enabled() const { return !path_.empty(); }

  template <typename T>
  void Param(const char* key, T value) {
    params_.emplace_back(key, Encode(value));
  }
  void Param(const char* key, const char* value) {
    params_.emplace_back(key, Quoted(value));
  }

  void BeginRow() { rows_.emplace_back(); }
  template <typename T>
  void Value(const char* key, T value) {
    rows_.back().emplace_back(key, Encode(value));
  }
  void Value(const char* key, const char* value) {
    rows_.back().emplace_back(key, Quoted(value));
  }

  // Idempotent; also invoked by the destructor. Returns false (after
  // printing the error) when the file cannot be written.
  bool Write() {
    if (!enabled() || written_) return true;
    written_ = true;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write bench JSON to %s\n", path_.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": %s,\n  \"params\": ",
                 Quoted(name_).c_str());
    WriteFields(f, params_, "  ");
    std::fprintf(f, ",\n  \"rows\": [");
    for (size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "%s\n    ", i == 0 ? "" : ",");
      WriteFields(f, rows_[i], "    ");
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("bench JSON written to %s\n", path_.c_str());
    return true;
  }

 private:
  using Fields = std::vector<std::pair<std::string, std::string>>;

  template <typename T>
  static std::string Encode(T value) {
    static_assert(std::is_arithmetic_v<T>, "use the const char* overload");
    char buf[64];
    if constexpr (std::is_floating_point_v<T>) {
      // %.17g round-trips doubles; JSON has no Inf/NaN literals.
      if (value != value || value == std::numeric_limits<T>::infinity() ||
          value == -std::numeric_limits<T>::infinity()) {
        return "null";
      }
      std::snprintf(buf, sizeof buf, "%.17g", static_cast<double>(value));
    } else if constexpr (std::is_signed_v<T>) {
      std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(value));
    } else {
      std::snprintf(buf, sizeof buf, "%llu",
                    static_cast<unsigned long long>(value));
    }
    return buf;
  }

  static std::string Quoted(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += '"';
    return out;
  }

  static void WriteFields(std::FILE* f, const Fields& fields,
                          const char* indent) {
    std::fprintf(f, "{");
    for (size_t i = 0; i < fields.size(); ++i) {
      std::fprintf(f, "%s\n%s  %s: %s", i == 0 ? "" : ",", indent,
                   Quoted(fields[i].first).c_str(), fields[i].second.c_str());
    }
    std::fprintf(f, "\n%s}", indent);
  }

  std::string name_;
  std::string path_;
  Fields params_;
  std::vector<Fields> rows_;
  bool written_ = false;
};

// Adds the standard workload params to a report.
inline void ReportScale(BenchReport* report, const BenchScale& scale) {
  report->Param("num_objects", scale.num_objects);
  report->Param("num_queries", scale.num_queries);
  report->Param("num_ticks", scale.num_ticks);
}

// Mirrors the per-phase TickStats wall-time split (summed over a run)
// and the allocation counter into the current row.
inline void ReportTickStats(BenchReport* report, const stq::TickStats& stats) {
  report->Value("removals_seconds", stats.removals_seconds);
  report->Value("upserts_seconds", stats.upserts_seconds);
  report->Value("query_changes_seconds", stats.query_changes_seconds);
  report->Value("query_pass_seconds", stats.query_pass_seconds);
  report->Value("object_match_seconds", stats.object_match_seconds);
  report->Value("object_apply_seconds", stats.object_apply_seconds);
  report->Value("knn_search_seconds", stats.knn_search_seconds);
  report->Value("knn_apply_seconds", stats.knn_apply_seconds);
  report->Value("heap_allocations", stats.heap_allocations);
  report->Value("bytes_resident", stats.bytes_resident);
}

// One sample of the session/transport resilience counters (see
// stq/core/session.h for the three vantage points). Default-constructed
// = all zeros, for benches that drive the engine without a session
// layer.
struct ResilienceSample {
  stq::TransportCounters transport;
  stq::SessionCounters session;
  stq::ClientSession::Counters clients;
};

// Mirrors the resilience counters into the current row. Every bench
// emits the same keys so the JSON schema is uniform across binaries;
// transports that never drop (or no transport at all) report zeros.
inline void ReportResilienceCounters(BenchReport* report,
                                     const ResilienceSample& s = {}) {
  report->Value("envelopes_sent", s.session.envelopes_sent);
  report->Value("heartbeats_sent", s.session.heartbeats_sent);
  report->Value("envelopes_dropped", s.transport.dropped);
  report->Value("envelopes_delayed", s.transport.delayed);
  report->Value("partition_blocked", s.transport.partition_blocked);
  report->Value("resyncs_served",
                s.session.resyncs_served_diff + s.session.resyncs_served_full);
  report->Value("resyncs_applied", s.clients.resyncs_applied);
  report->Value("gaps_detected", s.clients.gaps_detected);
  report->Value("queue_overflows", s.session.queue_overflows);
  report->Value("flush_deferred", s.session.flush_deferred);
  report->Value("commits_gated", s.session.commits_gated);
}

}  // namespace stq_bench

#endif  // STQ_BENCH_BENCH_COMMON_H_
