// Ablation A6 — Q-index baseline (R-tree on queries, objects probe).
//
// "The Q-index is limited in two aspects: (1) It performs reevaluation of
// all the queries every T time units. (2) It is applicable only for
// stationary queries." This bench quantifies both the wall-clock and the
// wire cost of that model next to the shared incremental grid, on the
// only workload Q-index supports (stationary range queries). Sweep:
// object population. Expected shape: Q-index latency tracks
// #objects x log(#queries) per period regardless of how little changed,
// and its wire cost is the full answer set every period.

#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "stq/baseline/qindex_processor.h"
#include "stq/baseline/vci_processor.h"

namespace {
using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}
}  // namespace

int main(int argc, char** argv) {
  const size_t num_queries = stq_bench::EnvSize("STQ_BENCH_QUERIES", 10000);
  const size_t max_objects = stq_bench::EnvSize("STQ_BENCH_OBJECTS", 80000);
  constexpr int kTicks = 3;

  stq_bench::BenchReport report("ablation_qindex", argc, argv);
  report.Param("num_queries", num_queries);
  report.Param("max_objects", max_objects);
  report.Param("num_ticks", kTicks);
  report.Param("query_side_length", 0.02);
  report.Param("object_update_fraction", 0.3);

  std::printf("Ablation A6: Q-index and VCI vs. shared incremental grid "
              "(stationary queries)\n");
  std::printf("queries=%zu side=0.02, 30%% objects report/period, mean "
              "per period over %d periods\n\n",
              num_queries, kTicks);
  std::printf("%-10s %12s %12s %12s %14s %14s\n", "objects", "incr_ms",
              "qindex_ms", "vci_ms", "incr_KB", "qindex_KB");

  for (size_t num_objects = max_objects / 16; num_objects <= max_objects;
       num_objects *= 4) {
    stq_bench::BenchScale scale;
    scale.num_objects = num_objects;
    scale.num_queries = num_queries;
    scale.num_ticks = kTicks;
    stq::NetworkWorkloadOptions workload_options =
        stq_bench::PaperWorkloadOptions(scale, 0.02, 0.3, /*seed=*/77);
    workload_options.moving_query_fraction = 0.0;
    const stq::Workload workload =
        stq::Workload::GenerateNetwork(workload_options);

    stq::QueryProcessorOptions options;
    options.grid_cells_per_side = 64;
    stq::QueryProcessor incremental(options);
    stq::QIndexProcessor qindex;
    stq::VciProcessor::Options vci_options;
    vci_options.max_speed = 0.001;       // bound of the road-network speeds
    vci_options.refresh_interval = 60.0;  // rebuild every ~12 periods
    stq::VciProcessor vci(vci_options);
    workload.ApplyInitial(&incremental);
    for (const stq::ObjectReport& r : workload.initial_objects()) {
      qindex.UpsertObject(r.id, r.loc, r.t);
      vci.UpsertObject(r.id, r.loc, r.t);
    }
    for (const stq::QueryRegionReport& q : workload.initial_queries()) {
      qindex.RegisterRangeQuery(q.id, q.region);
      vci.RegisterRangeQuery(q.id, q.region);
    }
    incremental.EvaluateTick(0.0);

    double incr_ms = 0.0, qindex_ms = 0.0, vci_ms = 0.0;
    size_t incr_bytes = 0, qindex_bytes = 0;
    for (size_t i = 0; i < workload.ticks().size(); ++i) {
      const double now = workload.ticks()[i].time;
      workload.ApplyTick(&incremental, i);
      for (const stq::ObjectReport& r : workload.ticks()[i].object_reports) {
        qindex.UpsertObject(r.id, r.loc, r.t);
        vci.UpsertObject(r.id, r.loc, r.t);
      }

      Clock::time_point start = Clock::now();
      const stq::TickResult tick = incremental.EvaluateTick(now);
      incr_ms += MillisSince(start);
      incr_bytes += tick.WireBytes(options.wire_cost);

      start = Clock::now();
      const stq::SnapshotResult full = qindex.EvaluateTick(now);
      qindex_ms += MillisSince(start);
      qindex_bytes += full.WireBytes(options.wire_cost);

      start = Clock::now();
      const stq::SnapshotResult vci_full = vci.EvaluateTick(now);
      vci_ms += MillisSince(start);
      (void)vci_full;
    }
    std::printf("%-10zu %12.2f %12.2f %12.2f %14.1f %14.1f\n", num_objects,
                incr_ms / kTicks, qindex_ms / kTicks, vci_ms / kTicks,
                stq_bench::ToKb(incr_bytes / kTicks),
                stq_bench::ToKb(qindex_bytes / kTicks));

    report.BeginRow();
    stq_bench::ReportResilienceCounters(&report);
    report.Value("num_objects", num_objects);
    report.Value("incremental_ms", incr_ms / kTicks);
    report.Value("qindex_ms", qindex_ms / kTicks);
    report.Value("vci_ms", vci_ms / kTicks);
    report.Value("incremental_kb", stq_bench::ToKb(incr_bytes / kTicks));
    report.Value("qindex_kb", stq_bench::ToKb(qindex_bytes / kTicks));
  }
  return report.Write() ? 0 : 1;
}
