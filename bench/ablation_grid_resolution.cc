// Ablation A2 — grid resolution.
//
// The uniform N x N grid trades cell-list lengths (coarse grids scan more
// objects/stubs per candidate lookup) against clipping overhead and empty
// cells (fine grids touch more cells per query footprint). This benchmark
// measures one full evaluation period at several resolutions, plus the
// grid's memory-shaped statistics.
//
// google-benchmark: each iteration advances the live workload by one
// period and evaluates it.

#include <benchmark/benchmark.h>

#include "bench_gbench_main.h"

#include <memory>

#include "bench_common.h"
#include "stq/gen/network_generator.h"
#include "stq/gen/query_generator.h"
#include "stq/gen/road_network.h"

namespace {

struct LiveWorkload {
  std::unique_ptr<stq::RoadNetwork> city;
  std::unique_ptr<stq::NetworkGenerator> objects;
  std::unique_ptr<stq::QueryGenerator> queries;
  std::unique_ptr<stq::QueryProcessor> processor;
  double now = 0.0;
};

LiveWorkload MakeLiveWorkload(int grid_cells, size_t num_objects,
                              size_t num_queries) {
  LiveWorkload live;
  stq::RoadNetwork::GridCityOptions city_options;
  city_options.rows = 30;
  city_options.cols = 30;
  live.city = std::make_unique<stq::RoadNetwork>(
      stq::RoadNetwork::MakeGridCity(city_options));

  stq::NetworkGenerator::Options object_options;
  object_options.num_objects = num_objects;
  object_options.seed = 3;
  object_options.route = stq::NetworkGenerator::RouteStrategy::kRandomWalk;
  live.objects =
      std::make_unique<stq::NetworkGenerator>(live.city.get(), object_options);

  stq::QueryGenerator::Options query_options;
  query_options.num_queries = num_queries;
  query_options.side_length = 0.02;
  query_options.seed = 4;
  query_options.route = stq::NetworkGenerator::RouteStrategy::kRandomWalk;
  live.queries =
      std::make_unique<stq::QueryGenerator>(live.city.get(), query_options);

  stq::QueryProcessorOptions options;
  options.grid_cells_per_side = grid_cells;
  live.processor = std::make_unique<stq::QueryProcessor>(options);
  for (const stq::ObjectReport& r : live.objects->InitialReports(0.0)) {
    live.processor->UpsertObject(r.id, r.loc, r.t);
  }
  for (const stq::QueryRegionReport& q : live.queries->InitialRegions(0.0)) {
    live.processor->RegisterRangeQuery(q.id, q.region);
  }
  live.processor->EvaluateTick(0.0);
  return live;
}

void BM_TickByGridResolution(benchmark::State& state) {
  const int grid_cells = static_cast<int>(state.range(0));
  const size_t num_objects = stq_bench::EnvSize("STQ_BENCH_OBJECTS", 20000);
  const size_t num_queries = stq_bench::EnvSize("STQ_BENCH_QUERIES", 20000);
  LiveWorkload live = MakeLiveWorkload(grid_cells, num_objects, num_queries);

  size_t updates = 0;
  for (auto _ : state) {
    state.PauseTiming();
    live.now += 5.0;
    for (const stq::ObjectReport& r : live.objects->Step(live.now, 5.0, 0.3)) {
      live.processor->UpsertObject(r.id, r.loc, r.t);
    }
    for (const stq::QueryRegionReport& q :
         live.queries->Step(live.now, 5.0, 0.3)) {
      live.processor->MoveRangeQuery(q.id, q.region);
    }
    state.ResumeTiming();
    const stq::TickResult tick = live.processor->EvaluateTick(live.now);
    updates += tick.updates.size();
  }
  const stq::GridStats stats = live.processor->grid().ComputeStats();
  state.counters["updates_per_tick"] = benchmark::Counter(
      static_cast<double>(updates), benchmark::Counter::kAvgIterations);
  state.counters["query_stubs"] =
      static_cast<double>(stats.num_query_entries);
  state.counters["max_cell_objects"] =
      static_cast<double>(stats.max_objects_in_cell);
}

}  // namespace

BENCHMARK(BM_TickByGridResolution)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

STQ_BENCHMARK_MAIN()
