// Ablation A7 — join strategy for bulk processing.
//
// The paper reduces bulk evaluation to a spatial join between the object
// set and the query set and picks a grid-partition join (PBSM-style).
// This bench compares that choice against the nested-loop join across
// population sizes and partition resolutions.
//
// Expected shape: nested-loop grows with |objects| x |queries|; the
// partition join grows near-linearly in input + output, with a broad
// optimum in partition resolution.

#include <benchmark/benchmark.h>

#include "bench_gbench_main.h"

#include <vector>

#include "stq/common/random.h"
#include "stq/grid/spatial_join.h"

namespace {

const stq::Rect kUnit{0.0, 0.0, 1.0, 1.0};

struct JoinInput {
  std::vector<stq::JoinPoint> points;
  std::vector<stq::JoinRect> rects;
};

JoinInput MakeInput(size_t num_points, size_t num_rects, double side) {
  stq::Xorshift128Plus rng(17);
  JoinInput input;
  input.points.reserve(num_points);
  for (size_t i = 0; i < num_points; ++i) {
    input.points.push_back(
        {i + 1, stq::Point{rng.NextDouble(), rng.NextDouble()}});
  }
  input.rects.reserve(num_rects);
  for (size_t i = 0; i < num_rects; ++i) {
    input.rects.push_back(
        {i + 1, stq::Rect::CenteredSquare(
                    stq::Point{rng.NextDouble(), rng.NextDouble()}, side)});
  }
  return input;
}

void BM_GridPartitionJoin(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const int cells = static_cast<int>(state.range(1));
  const JoinInput input = MakeInput(n, n / 10, 0.02);
  size_t pairs = 0;
  for (auto _ : state) {
    const auto out =
        stq::GridPartitionJoin(input.points, input.rects, kUnit, cells);
    pairs = out.size();
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["pairs"] = static_cast<double>(pairs);
}

void BM_NestedLoopJoin(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const JoinInput input = MakeInput(n, n / 10, 0.02);
  size_t pairs = 0;
  for (auto _ : state) {
    const auto out = stq::NestedLoopJoin(input.points, input.rects);
    pairs = out.size();
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["pairs"] = static_cast<double>(pairs);
}

}  // namespace

BENCHMARK(BM_GridPartitionJoin)
    ->Args({10000, 8})
    ->Args({10000, 32})
    ->Args({10000, 64})
    ->Args({10000, 128})
    ->Args({40000, 64})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_NestedLoopJoin)
    ->Arg(2000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

STQ_BENCHMARK_MAIN()
