// Ablation: spatially sharded shared-execution tick — shard scaling.
//
// The universe splits into S rectangular shards, each owning its own
// grid and stores and ticking independently on a thread pool; a router
// deduplicates cross-shard updates and merges the per-shard streams into
// the canonical order. This binary sweeps shard counts over the paper's
// fig-5a network workload (worker_threads == num_shards so every shard
// can tick concurrently) and reports ticks/sec, speedup over the
// single-grid engine, the per-shard busy/critical-path/merge wall-time
// split from TickStats, and a CRC32 of the canonical update stream —
// which must agree across all rows (the sharded engine is byte-identical
// to the single grid by construction; the differential tests pin the
// same property, this bench re-checks it at benchmark scale).
//
// Expected shape on a multi-core host: shard_busy spreads across the
// pool so the tick's critical path drops toward shard_max + merge;
// speedup > 2x at 4 shards on the fig-5a workload. On a single-core
// host the shards serialize and the sweep degenerates to measuring
// router overhead.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "stq/common/crc32.h"

namespace {

struct RunResult {
  double seconds = 0.0;     // total EvaluateTick wall time
  double shard_busy = 0.0;  // summed per-shard tick wall time
  double shard_max = 0.0;   // summed slowest-shard (critical path) time
  double merge = 0.0;       // refcount merge + canonicalization
  double route = 0.0;       // router dispatch (clip + dedup bookkeeping)
  uint32_t stream_crc = 0;  // CRC32 of all canonical update streams
  size_t ticks = 0;
  uint64_t allocs = 0;      // summed TickStats.heap_allocations
  size_t bytes_resident = 0;  // last tick's resident answer bytes
};

RunResult RunWorkload(const stq::Workload& workload, int shards) {
  stq::QueryProcessorOptions options;
  options.grid_cells_per_side = 64;
  options.num_shards = shards;
  options.worker_threads = std::max(1, shards);
  stq::QueryProcessor qp(options);
  workload.ApplyInitial(&qp);
  qp.EvaluateTick(0.0);  // drain the initial load outside the timed region

  RunResult result;
  std::string stream;
  for (size_t i = 0; i < workload.ticks().size(); ++i) {
    workload.ApplyTick(&qp, i);
    const auto start = std::chrono::steady_clock::now();
    const stq::TickResult tick = qp.EvaluateTick(workload.ticks()[i].time);
    result.seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    result.shard_busy += tick.stats.shard_tick_busy_seconds;
    result.shard_max += tick.stats.shard_tick_max_seconds;
    result.merge += tick.stats.shard_merge_seconds;
    result.route += tick.stats.shard_route_seconds;
    result.allocs += tick.stats.heap_allocations;
    result.bytes_resident = tick.stats.bytes_resident;
    stream.clear();
    for (const stq::Update& u : tick.updates) {
      stream += u.DebugString();
      stream += '\n';
    }
    result.stream_crc = stq::Crc32c(stream.data(), stream.size()) ^
                        (result.stream_crc * 31);
    ++result.ticks;
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  stq_bench::BenchScale scale = stq_bench::BenchScale::FromEnv();
  scale.num_queries = stq_bench::EnvSize("STQ_BENCH_QUERIES", 10000);
  bool assert_scaling = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--assert-scaling") == 0) assert_scaling = true;
  }

  stq_bench::BenchReport report("ablation_shards", argc, argv);
  stq_bench::ReportScale(&report, scale);
  report.Param("query_side_length", 0.02);
  report.Param("object_update_fraction", 0.5);
  report.Param("seed", 5150);

  std::printf("Ablation: shard scaling of the shared-execution tick\n");
  std::printf("objects=%zu queries=%zu T=5s ticks=%zu (fig-5a workload)\n\n",
              scale.num_objects, scale.num_queries, scale.num_ticks);

  const stq::Workload workload = stq::Workload::GenerateNetwork(
      stq_bench::PaperWorkloadOptions(scale, /*query_side=*/0.02,
                                      /*object_update_fraction=*/0.5,
                                      /*seed=*/5150));

  std::printf("%-8s %12s %10s %12s %12s %12s %12s %14s %12s\n", "shards",
              "ticks/sec", "speedup", "shard_busy", "shard_max", "merge_s",
              "route_s", "allocs/tick", "stream_crc");

  double single_seconds = 0.0;
  uint32_t single_crc = 0;
  bool crc_mismatch = false;
  std::map<int, double> speedups;
  for (int shards : {1, 2, 4, 8}) {
    const RunResult r = RunWorkload(workload, shards);
    if (shards == 1) {
      single_seconds = r.seconds;
      single_crc = r.stream_crc;
    } else if (r.stream_crc != single_crc) {
      crc_mismatch = true;
    }
    const double ticks_per_sec =
        r.seconds > 0 ? static_cast<double>(r.ticks) / r.seconds : 0.0;
    const double allocs_per_tick =
        r.ticks > 0 ? static_cast<double>(r.allocs) / r.ticks : 0.0;
    speedups[shards] = r.seconds > 0 ? single_seconds / r.seconds : 0.0;
    std::printf(
        "%-8d %12.2f %9.2fx %12.4f %12.4f %12.4f %12.4f %14.1f   0x%08x\n",
        shards, ticks_per_sec,
        r.seconds > 0 ? single_seconds / r.seconds : 0.0, r.shard_busy,
        r.shard_max, r.merge, r.route, allocs_per_tick, r.stream_crc);

    report.BeginRow();
    stq_bench::ReportResilienceCounters(&report);
    report.Value("shards", shards);
    report.Value("ticks_per_sec", ticks_per_sec);
    report.Value("speedup", r.seconds > 0 ? single_seconds / r.seconds : 0.0);
    report.Value("shard_busy_seconds", r.shard_busy);
    report.Value("shard_max_seconds", r.shard_max);
    report.Value("merge_seconds", r.merge);
    report.Value("route_seconds", r.route);
    report.Value("allocs_per_tick", allocs_per_tick);
    report.Value("bytes_resident", r.bytes_resident);
    report.Value("stream_crc", r.stream_crc);
  }

  if (crc_mismatch) {
    std::printf("\nFAIL: update streams diverged across shard counts\n");
    return 1;
  }
  std::printf("\nupdate streams byte-identical across all shard counts\n");

  // --assert-scaling: the CI perf-smoke gate. Thresholds carry generous
  // slack below the expected multi-core shape (shards=2 well above
  // break-even, shards=4 approaching 2x on fig-5a) so runner noise does
  // not flake the gate, while a return to the pre-fix regression
  // (shards=2 around 0.8x) still fails it. Parallel speedup cannot exist
  // without parallel hardware, so hosts with fewer than 4 CPUs skip.
  if (assert_scaling) {
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw < 4) {
      std::printf("assert-scaling: skipped (%u hardware threads < 4)\n", hw);
    } else {
      bool ok = true;
      auto check = [&](int shards, double min_speedup) {
        if (speedups[shards] < min_speedup) {
          std::printf(
              "FAIL: shards=%d speedup %.2fx below required %.2fx\n", shards,
              speedups[shards], min_speedup);
          ok = false;
        }
      };
      check(/*shards=*/2, /*min_speedup=*/1.0);
      check(/*shards=*/4, /*min_speedup=*/1.5);
      if (!ok) return 1;
      std::printf("assert-scaling: passed (2 shards %.2fx, 4 shards %.2fx)\n",
                  speedups[2], speedups[4]);
    }
  }
  return report.Write() ? 0 : 1;
}
