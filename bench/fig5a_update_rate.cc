// Figure 5(a): answer size vs. object update rate.
//
// "Figure 5a gives the effect of the number of moving objects that
// reported a change of location within the last 5 seconds. The size of
// the complete answer is constant and is orders of magnitude of the size
// of the worst-case incremental answer."
//
// Setup per the paper: network-based generator, 100K moving objects, 100K
// moving square queries, evaluation every 5 seconds. The x-axis sweeps
// the fraction of objects that report per period; y is KBytes shipped per
// period — the incremental update stream vs. the complete answers.
//
// Expected shape: complete is flat; incremental grows with the update
// rate and stays far below complete.

#include <cstdio>

#include "bench_common.h"

int main() {
  const stq_bench::BenchScale scale = stq_bench::BenchScale::FromEnv();
  constexpr double kQuerySide = 0.02;

  std::printf("Figure 5(a): answer size vs. object update rate\n");
  std::printf("objects=%zu queries=%zu side=%.3f T=5s ticks=%zu\n\n",
              scale.num_objects, scale.num_queries, kQuerySide,
              scale.num_ticks);
  std::printf("%-12s %18s %18s %10s\n", "update_rate", "incremental_KB",
              "complete_KB", "ratio");

  for (int rate_pct = 10; rate_pct <= 100; rate_pct += 10) {
    const stq::Workload workload = stq::Workload::GenerateNetwork(
        stq_bench::PaperWorkloadOptions(scale, kQuerySide, rate_pct / 100.0,
                                        /*seed=*/5150));
    stq::QueryProcessorOptions options;
    options.grid_cells_per_side = 64;
    stq::QueryProcessor qp(options);
    workload.ApplyInitial(&qp);
    qp.EvaluateTick(0.0);

    double incremental_kb = 0.0;
    double complete_kb = 0.0;
    for (size_t i = 0; i < workload.ticks().size(); ++i) {
      workload.ApplyTick(&qp, i);
      const stq::TickResult tick = qp.EvaluateTick(workload.ticks()[i].time);
      incremental_kb += stq_bench::ToKb(tick.WireBytes(options.wire_cost));
      complete_kb += stq_bench::ToKb(stq_bench::CompleteAnswerBytes(qp));
    }
    incremental_kb /= static_cast<double>(workload.ticks().size());
    complete_kb /= static_cast<double>(workload.ticks().size());
    std::printf("%-11d%% %18.1f %18.1f %9.1fx\n", rate_pct, incremental_kb,
                complete_kb,
                incremental_kb > 0 ? complete_kb / incremental_kb : 0.0);
  }
  return 0;
}
