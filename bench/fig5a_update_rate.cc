// Figure 5(a): answer size vs. object update rate.
//
// "Figure 5a gives the effect of the number of moving objects that
// reported a change of location within the last 5 seconds. The size of
// the complete answer is constant and is orders of magnitude of the size
// of the worst-case incremental answer."
//
// Setup per the paper: network-based generator, 100K moving objects, 100K
// moving square queries, evaluation every 5 seconds. The x-axis sweeps
// the fraction of objects that report per period; y is KBytes shipped per
// period — the incremental update stream vs. the complete answers. The
// table (and --json output) additionally reports tick throughput and the
// steady-state allocation count per tick, the metrics the flat-container
// work optimizes (see DESIGN.md, "Memory layout & allocation
// discipline").
//
// Expected shape: complete is flat; incremental grows with the update
// rate and stays far below complete.

#include <chrono>
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  const stq_bench::BenchScale scale = stq_bench::BenchScale::FromEnv();
  constexpr double kQuerySide = 0.02;

  stq_bench::BenchReport report("fig5a_update_rate", argc, argv);
  stq_bench::ReportScale(&report, scale);
  report.Param("query_side_length", kQuerySide);
  report.Param("tick_seconds", 5.0);
  report.Param("seed", 5150);

  std::printf("Figure 5(a): answer size vs. object update rate\n");
  std::printf("objects=%zu queries=%zu side=%.3f T=5s ticks=%zu\n\n",
              scale.num_objects, scale.num_queries, kQuerySide,
              scale.num_ticks);
  std::printf("%-12s %18s %18s %10s %12s %14s\n", "update_rate",
              "incremental_KB", "complete_KB", "ratio", "ticks/sec",
              "allocs/tick");

  for (int rate_pct = 10; rate_pct <= 100; rate_pct += 10) {
    const stq::Workload workload = stq::Workload::GenerateNetwork(
        stq_bench::PaperWorkloadOptions(scale, kQuerySide, rate_pct / 100.0,
                                        /*seed=*/5150));
    stq::QueryProcessorOptions options;
    options.grid_cells_per_side = 64;
    stq::QueryProcessor qp(options);
    workload.ApplyInitial(&qp);
    qp.EvaluateTick(0.0);

    double incremental_kb = 0.0;
    double complete_kb = 0.0;
    double tick_seconds = 0.0;
    stq::TickStats phase_sums;
    for (size_t i = 0; i < workload.ticks().size(); ++i) {
      workload.ApplyTick(&qp, i);
      const auto start = std::chrono::steady_clock::now();
      const stq::TickResult tick = qp.EvaluateTick(workload.ticks()[i].time);
      tick_seconds += std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
      incremental_kb += stq_bench::ToKb(tick.WireBytes(options.wire_cost));
      complete_kb += stq_bench::ToKb(stq_bench::CompleteAnswerBytes(qp));
      phase_sums.removals_seconds += tick.stats.removals_seconds;
      phase_sums.upserts_seconds += tick.stats.upserts_seconds;
      phase_sums.query_changes_seconds += tick.stats.query_changes_seconds;
      phase_sums.query_pass_seconds += tick.stats.query_pass_seconds;
      phase_sums.object_match_seconds += tick.stats.object_match_seconds;
      phase_sums.object_apply_seconds += tick.stats.object_apply_seconds;
      phase_sums.knn_search_seconds += tick.stats.knn_search_seconds;
      phase_sums.knn_apply_seconds += tick.stats.knn_apply_seconds;
      phase_sums.heap_allocations += tick.stats.heap_allocations;
      // Footprint, not churn: the last tick's resident answer bytes.
      phase_sums.bytes_resident = tick.stats.bytes_resident;
    }
    const double ticks = static_cast<double>(workload.ticks().size());
    incremental_kb /= ticks;
    complete_kb /= ticks;
    const double ticks_per_sec = tick_seconds > 0 ? ticks / tick_seconds : 0.0;
    const double allocs_per_tick =
        static_cast<double>(phase_sums.heap_allocations) / ticks;
    std::printf("%-11d%% %18.1f %18.1f %9.1fx %12.2f %14.1f\n", rate_pct,
                incremental_kb, complete_kb,
                incremental_kb > 0 ? complete_kb / incremental_kb : 0.0,
                ticks_per_sec, allocs_per_tick);

    report.BeginRow();
    stq_bench::ReportResilienceCounters(&report);
    report.Value("update_rate_pct", rate_pct);
    report.Value("incremental_kb", incremental_kb);
    report.Value("complete_kb", complete_kb);
    report.Value("ticks_per_sec", ticks_per_sec);
    report.Value("allocs_per_tick", allocs_per_tick);
    stq_bench::ReportTickStats(&report, phase_sums);
  }
  return report.Write() ? 0 : 1;
}
