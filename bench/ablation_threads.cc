// Ablation: parallel shared-execution tick — worker-thread scaling.
//
// The tick's matching phase (object pass) and k-NN searches shard across
// a ThreadPool; the membership/answer mutations replay serially in
// canonical order, so the update stream is byte-identical for every
// worker count. This binary sweeps worker counts over the paper's
// network workload and reports ticks/sec, speedup over the serial tick,
// the per-phase wall-time split from TickStats, and a CRC32 of the
// canonical update stream (which must agree across all rows).
//
// Expected shape on a multi-core host: wall time of the parallel phases
// (match + knn-search) drops roughly linearly until memory bandwidth or
// the serial apply phases dominate (Amdahl); the stream CRC is constant.
// On a single-core host all rows degenerate to the serial tick.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "stq/common/crc32.h"

namespace {

struct RunResult {
  double seconds = 0.0;            // total EvaluateTick wall time
  double parallel_seconds = 0.0;   // match + knn-search (shardable work)
  double apply_seconds = 0.0;      // object-apply + knn-apply (serial)
  uint32_t stream_crc = 0;         // CRC32 of all canonical update streams
  size_t ticks = 0;
};

RunResult RunWorkload(const stq::Workload& workload, int workers) {
  stq::QueryProcessorOptions options;
  options.grid_cells_per_side = 64;
  options.worker_threads = workers;
  stq::QueryProcessor qp(options);
  workload.ApplyInitial(&qp);
  qp.EvaluateTick(0.0);  // drain the initial load outside the timed region

  RunResult result;
  std::string stream;
  for (size_t i = 0; i < workload.ticks().size(); ++i) {
    workload.ApplyTick(&qp, i);
    const auto start = std::chrono::steady_clock::now();
    const stq::TickResult tick = qp.EvaluateTick(workload.ticks()[i].time);
    result.seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    result.parallel_seconds += tick.stats.ParallelSeconds();
    result.apply_seconds +=
        tick.stats.object_apply_seconds + tick.stats.knn_apply_seconds;
    stream.clear();
    for (const stq::Update& u : tick.updates) {
      stream += u.DebugString();
      stream += '\n';
    }
    result.stream_crc = stq::Crc32c(stream.data(), stream.size()) ^
                        (result.stream_crc * 31);
    ++result.ticks;
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  stq_bench::BenchScale scale = stq_bench::BenchScale::FromEnv();
  scale.num_queries = stq_bench::EnvSize("STQ_BENCH_QUERIES", 10000);

  stq_bench::BenchReport report("ablation_threads", argc, argv);
  stq_bench::ReportScale(&report, scale);
  report.Param("query_side_length", 0.02);
  report.Param("object_update_fraction", 0.5);
  report.Param("seed", 5150);

  std::printf("Ablation: worker-thread scaling of the shared-execution tick\n");
  std::printf("objects=%zu queries=%zu T=5s ticks=%zu\n\n", scale.num_objects,
              scale.num_queries, scale.num_ticks);

  const stq::Workload workload = stq::Workload::GenerateNetwork(
      stq_bench::PaperWorkloadOptions(scale, /*query_side=*/0.02,
                                      /*object_update_fraction=*/0.5,
                                      /*seed=*/5150));

  std::printf("%-8s %12s %10s %12s %12s %12s\n", "workers", "ticks/sec",
              "speedup", "parallel_s", "apply_s", "stream_crc");

  double serial_seconds = 0.0;
  uint32_t serial_crc = 0;
  bool crc_mismatch = false;
  for (int workers : {1, 2, 4, 8}) {
    const RunResult r = RunWorkload(workload, workers);
    if (workers == 1) {
      serial_seconds = r.seconds;
      serial_crc = r.stream_crc;
    } else if (r.stream_crc != serial_crc) {
      crc_mismatch = true;
    }
    const double ticks_per_sec =
        r.seconds > 0 ? static_cast<double>(r.ticks) / r.seconds : 0.0;
    std::printf("%-8d %12.2f %9.2fx %12.4f %12.4f   0x%08x\n", workers,
                ticks_per_sec,
                r.seconds > 0 ? serial_seconds / r.seconds : 0.0,
                r.parallel_seconds, r.apply_seconds, r.stream_crc);

    report.BeginRow();
    stq_bench::ReportResilienceCounters(&report);
    report.Value("workers", workers);
    report.Value("ticks_per_sec", ticks_per_sec);
    report.Value("speedup", r.seconds > 0 ? serial_seconds / r.seconds : 0.0);
    report.Value("parallel_seconds", r.parallel_seconds);
    report.Value("apply_seconds", r.apply_seconds);
    report.Value("stream_crc", r.stream_crc);
  }

  if (crc_mismatch) {
    std::printf("\nFAIL: update streams diverged across worker counts\n");
    return 1;
  }
  std::printf("\nupdate streams byte-identical across all worker counts\n");
  return report.Write() ? 0 : 1;
}
