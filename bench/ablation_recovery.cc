// Ablation A5 — out-of-sync recovery cost: committed-diff vs. full resend.
//
// A client disconnects for D evaluation periods and then wakes up. The
// paper's recovery ships diff(committed answer, current answer); the
// naive baseline empties the client and resends the complete answers.
// Sweep: disconnect duration. Expected shape: the diff starts near zero
// and grows with the disconnect duration (more missed churn), while the
// full resend is flat at the total answer size — so the diff wins for
// short outages, which is the common case the mechanism targets.
//
// Section 2 — durable recovery cost: WAL replay vs. checkpoint interval.
// The same workload is driven through the PersistentServer on an
// in-memory FaultInjectionEnv, crashed (all unsynced state dropped), and
// reopened. Sweep: how often Checkpoint() runs. Expected shape: without
// checkpoints the WAL and the reopen replay grow with history; tighter
// checkpoint intervals bound both at the cost of rewriting the snapshot.

#include <chrono>
#include <cstdint>
#include <cstdio>

#include "bench_common.h"
#include "stq/core/server.h"
#include "stq/gen/network_generator.h"
#include "stq/gen/query_generator.h"
#include "stq/gen/road_network.h"
#include "stq/storage/fault_env.h"
#include "stq/storage/persistent_server.h"

namespace {

uint64_t SizeOrZero(stq::Env* env, const std::string& path) {
  uint64_t size = 0;
  return env->GetFileSize(path, &size).ok() ? size : 0;
}

// Drives `ticks` evaluation periods of the grid-city workload through a
// persistent server, checkpointing every `checkpoint_every` ticks (0 =
// never), then crashes it and times the recovery Open().
void RunDurableRecovery(const stq::RoadNetwork& city,
                        const stq::NetworkGenerator::Options& object_options,
                        const stq::QueryGenerator::Options& query_options,
                        size_t num_queries, int ticks, int checkpoint_every,
                        stq_bench::BenchReport* report) {
  stq::FaultInjectionEnv env;
  {
    stq::PersistentServer::Options options;
    options.dir = "/db";
    options.env = &env;
    options.server.processor.grid_cells_per_side = 64;
    stq::PersistentServer server(options);
    if (!server.Open().ok()) return;
    server.AttachClient(1);
    stq::NetworkGenerator objs(&city, object_options);
    stq::QueryGenerator qrys(&city, query_options);
    for (const stq::ObjectReport& r : objs.InitialReports(0.0)) {
      server.ReportObject(r.id, r.loc, r.t);
    }
    for (const stq::QueryRegionReport& q : qrys.InitialRegions(0.0)) {
      server.RegisterRangeQuery(q.id, 1, q.region);
    }
    server.Tick(0.0);
    for (stq::QueryId qid = 1; qid <= num_queries; ++qid) {
      server.CommitQuery(qid);
    }
    for (int tick = 1; tick <= ticks; ++tick) {
      const double now = tick * 5.0;
      for (const stq::ObjectReport& r : objs.Step(now, 5.0, 0.5)) {
        server.ReportObject(r.id, r.loc, r.t);
      }
      for (const stq::QueryRegionReport& q : qrys.Step(now, 5.0, 0.5)) {
        server.MoveRangeQuery(q.id, q.region);
      }
      server.Tick(now);
      if (checkpoint_every > 0 && tick % checkpoint_every == 0) {
        server.Checkpoint();
      }
    }
    // Crash: the server is destroyed without Close().
  }
  env.SimulateCrash(stq::FaultInjectionEnv::UnsyncedLoss::kDropAll);

  const uint64_t wal_bytes = SizeOrZero(&env, "/db/WAL");
  const uint64_t snapshot_bytes = SizeOrZero(&env, "/db/SNAPSHOT");
  stq::PersistentServer::Options options;
  options.dir = "/db";
  options.env = &env;
  options.server.processor.grid_cells_per_side = 64;
  stq::PersistentServer recovered(options);
  const auto start = std::chrono::steady_clock::now();
  const stq::Status open = recovered.Open();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const double open_ms =
      std::chrono::duration<double, std::milli>(elapsed).count();
  if (!open.ok()) {
    std::printf("%-16d %14s %14s %10s  (%s)\n",
                checkpoint_every, "-", "-", "-", open.ToString().c_str());
    return;
  }
  std::printf("%-16d %14.1f %14.1f %9.1f\n", checkpoint_every,
              stq_bench::ToKb(wal_bytes), stq_bench::ToKb(snapshot_bytes),
              open_ms);
  report->BeginRow();
  stq_bench::ReportResilienceCounters(report);
  report->Value("section", "durable_recovery");
  report->Value("checkpoint_every", checkpoint_every);
  report->Value("wal_kb", stq_bench::ToKb(wal_bytes));
  report->Value("snapshot_kb", stq_bench::ToKb(snapshot_bytes));
  report->Value("open_ms", open_ms);
  recovered.Close();
}

}  // namespace

int main(int argc, char** argv) {
  const size_t num_objects = stq_bench::EnvSize("STQ_BENCH_OBJECTS", 20000);
  const size_t num_queries = stq_bench::EnvSize("STQ_BENCH_QUERIES", 500);

  stq_bench::BenchReport report("ablation_recovery", argc, argv);
  report.Param("num_objects", num_objects);
  report.Param("num_queries", num_queries);
  report.Param("query_side_length", 0.03);

  std::printf("Ablation A5: recovery bytes vs. disconnect duration\n");
  std::printf("objects=%zu queries=%zu side=0.03, one client owns all "
              "queries\n\n",
              num_objects, num_queries);
  std::printf("%-16s %14s %14s %10s\n", "outage_periods", "diff_KB",
              "full_KB", "saving");

  for (int outage = 1; outage <= 10; ++outage) {
    stq::RoadNetwork::GridCityOptions city_options;
    city_options.rows = 30;
    city_options.cols = 30;
    const stq::RoadNetwork city =
        stq::RoadNetwork::MakeGridCity(city_options);
    stq::NetworkGenerator::Options object_options;
    object_options.num_objects = num_objects;
    object_options.seed = 31;
    object_options.route = stq::NetworkGenerator::RouteStrategy::kRandomWalk;
    stq::NetworkGenerator objects(&city, object_options);
    stq::QueryGenerator::Options query_options;
    query_options.num_queries = num_queries;
    query_options.side_length = 0.03;
    query_options.seed = 32;
    query_options.route = stq::NetworkGenerator::RouteStrategy::kRandomWalk;
    stq::QueryGenerator queries(&city, query_options);

    auto run = [&](stq::RecoveryPolicy policy) -> size_t {
      stq::Server::Options server_options;
      server_options.processor.grid_cells_per_side = 64;
      server_options.recovery = policy;
      stq::Server server(server_options);
      server.AttachClient(1);
      // Fresh copies of the deterministic generators per run.
      stq::NetworkGenerator objs(&city, object_options);
      stq::QueryGenerator qrys(&city, query_options);
      for (const stq::ObjectReport& r : objs.InitialReports(0.0)) {
        server.ReportObject(r.id, r.loc, r.t);
      }
      for (const stq::QueryRegionReport& q : qrys.InitialRegions(0.0)) {
        server.RegisterRangeQuery(q.id, 1, q.region);
      }
      server.Tick(0.0);
      for (stq::QueryId qid = 1; qid <= num_queries; ++qid) {
        server.CommitQuery(qid);
      }
      server.DisconnectClient(1);
      for (int tick = 1; tick <= outage; ++tick) {
        const double now = tick * 5.0;
        for (const stq::ObjectReport& r : objs.Step(now, 5.0, 0.5)) {
          server.ReportObject(r.id, r.loc, r.t);
        }
        for (const stq::QueryRegionReport& q : qrys.Step(now, 5.0, 0.5)) {
          server.MoveRangeQuery(q.id, q.region);
        }
        server.Tick(now);
      }
      stq::Result<stq::Server::Delivery> recovery = server.ReconnectClient(1);
      return recovery.ok() ? recovery->bytes : 0;
    };

    const size_t diff_bytes = run(stq::RecoveryPolicy::kCommittedDiff);
    const size_t full_bytes = run(stq::RecoveryPolicy::kFullAnswer);
    std::printf("%-16d %14.1f %14.1f %9.1fx\n", outage,
                stq_bench::ToKb(diff_bytes), stq_bench::ToKb(full_bytes),
                diff_bytes > 0 ? static_cast<double>(full_bytes) /
                                     static_cast<double>(diff_bytes)
                               : 0.0);
    report.BeginRow();
    stq_bench::ReportResilienceCounters(&report);
    report.Value("section", "out_of_sync");
    report.Value("outage_periods", outage);
    report.Value("diff_kb", stq_bench::ToKb(diff_bytes));
    report.Value("full_kb", stq_bench::ToKb(full_bytes));
  }

  // --- Section 2: durable recovery (crash + WAL replay) --------------------
  const size_t durable_objects =
      stq_bench::EnvSize("STQ_BENCH_DURABLE_OBJECTS", 5000);
  const size_t durable_queries =
      stq_bench::EnvSize("STQ_BENCH_DURABLE_QUERIES", 200);
  const int durable_ticks = static_cast<int>(
      stq_bench::EnvSize("STQ_BENCH_DURABLE_TICKS", 12));

  std::printf("\nDurable recovery: WAL replay cost vs. checkpoint interval\n");
  std::printf("objects=%zu queries=%zu ticks=%d, crash drops unsynced "
              "state, then reopen\n\n",
              durable_objects, durable_queries, durable_ticks);
  std::printf("%-16s %14s %14s %10s\n", "ckpt_every", "wal_KB",
              "snapshot_KB", "open_ms");

  stq::RoadNetwork::GridCityOptions city_options;
  city_options.rows = 30;
  city_options.cols = 30;
  const stq::RoadNetwork city = stq::RoadNetwork::MakeGridCity(city_options);
  stq::NetworkGenerator::Options object_options;
  object_options.num_objects = durable_objects;
  object_options.seed = 41;
  object_options.route = stq::NetworkGenerator::RouteStrategy::kRandomWalk;
  stq::QueryGenerator::Options query_options;
  query_options.num_queries = durable_queries;
  query_options.side_length = 0.03;
  query_options.seed = 42;
  query_options.route = stq::NetworkGenerator::RouteStrategy::kRandomWalk;

  for (int checkpoint_every : {0, 8, 4, 2, 1}) {
    RunDurableRecovery(city, object_options, query_options, durable_queries,
                       durable_ticks, checkpoint_every, &report);
  }
  return report.Write() ? 0 : 1;
}
