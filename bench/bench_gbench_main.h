// main() for the google-benchmark-based ablation binaries: translates
// the repo-wide `--json <path>` flag (see BenchReport in bench_common.h)
// into google-benchmark's JSON reporter so every bench binary shares one
// machine-readable output convention. All other arguments pass through
// to the framework untouched.
//
// Use STQ_BENCHMARK_MAIN() in place of BENCHMARK_MAIN().

#ifndef STQ_BENCH_BENCH_GBENCH_MAIN_H_
#define STQ_BENCH_BENCH_GBENCH_MAIN_H_

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

namespace stq_bench {

inline int GBenchMainWithJson(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<size_t>(argc) + 2);
  std::string json_path;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (i > 0 && arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (i > 0 && arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      args.push_back(arg);
    }
  }
  if (!json_path.empty()) {
    args.push_back("--benchmark_out=" + json_path);
    args.push_back("--benchmark_out_format=json");
  }
  std::vector<char*> argv2;
  argv2.reserve(args.size());
  for (std::string& a : args) argv2.push_back(a.data());
  int argc2 = static_cast<int>(argv2.size());
  benchmark::Initialize(&argc2, argv2.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, argv2.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace stq_bench

#define STQ_BENCHMARK_MAIN()                         \
  int main(int argc, char** argv) {                  \
    return stq_bench::GBenchMainWithJson(argc, argv); \
  }

#endif  // STQ_BENCH_BENCH_GBENCH_MAIN_H_
