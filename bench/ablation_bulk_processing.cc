// Ablation A3 — bulk buffered processing vs. per-report evaluation.
//
// "Since a typical location-aware server receives a massive amount of
// updates ... it becomes a huge overhead to handle each update
// individually. Thus, we buffer a set of updates ... for bulk
// processing."
//
// Both modes process the same stream of object reports against the same
// query population; bulk mode evaluates once per batch, individual mode
// evaluates after every single report. Reported metric: reports/second.
// Expected shape: bulk throughput grows with batch size (per-tick
// overheads amortize and per-id coalescing kicks in); individual stays
// flat and far lower.

#include <benchmark/benchmark.h>

#include "bench_gbench_main.h"

#include <memory>

#include "bench_common.h"
#include "stq/common/random.h"

namespace {

constexpr size_t kNumObjects = 5000;
constexpr size_t kNumQueries = 2000;

std::unique_ptr<stq::QueryProcessor> MakeProcessor(stq::Xorshift128Plus* rng) {
  stq::QueryProcessorOptions options;
  options.grid_cells_per_side = 48;
  auto qp = std::make_unique<stq::QueryProcessor>(options);
  for (stq::ObjectId id = 1; id <= kNumObjects; ++id) {
    qp->UpsertObject(id, {rng->NextDouble(), rng->NextDouble()}, 0.0);
  }
  for (stq::QueryId qid = 1; qid <= kNumQueries; ++qid) {
    qp->RegisterRangeQuery(
        qid, stq::Rect::CenteredSquare(
                 {rng->NextDouble(), rng->NextDouble()}, 0.03));
  }
  qp->EvaluateTick(0.0);
  return qp;
}

// One evaluation per batch of `batch_size` reports (the framework's mode).
void BM_BulkProcessing(benchmark::State& state) {
  const size_t batch_size = static_cast<size_t>(state.range(0));
  stq::Xorshift128Plus rng(1);
  std::unique_ptr<stq::QueryProcessor> qp = MakeProcessor(&rng);
  double now = 0.0;
  size_t reports = 0;
  for (auto _ : state) {
    now += 5.0;
    for (size_t i = 0; i < batch_size; ++i) {
      const stq::ObjectId id = 1 + rng.NextUint64(kNumObjects);
      qp->UpsertObject(id, {rng.NextDouble(), rng.NextDouble()}, now);
    }
    benchmark::DoNotOptimize(qp->EvaluateTick(now));
    reports += batch_size;
  }
  state.counters["reports_per_s"] = benchmark::Counter(
      static_cast<double>(reports), benchmark::Counter::kIsRate);
}

// One evaluation per report (the naive mode the paper argues against).
void BM_IndividualProcessing(benchmark::State& state) {
  const size_t batch_size = static_cast<size_t>(state.range(0));
  stq::Xorshift128Plus rng(1);
  std::unique_ptr<stq::QueryProcessor> qp = MakeProcessor(&rng);
  double now = 0.0;
  size_t reports = 0;
  for (auto _ : state) {
    for (size_t i = 0; i < batch_size; ++i) {
      now += 5.0 / static_cast<double>(batch_size);
      const stq::ObjectId id = 1 + rng.NextUint64(kNumObjects);
      qp->UpsertObject(id, {rng.NextDouble(), rng.NextDouble()}, now);
      benchmark::DoNotOptimize(qp->EvaluateTick(now));
    }
    reports += batch_size;
  }
  state.counters["reports_per_s"] = benchmark::Counter(
      static_cast<double>(reports), benchmark::Counter::kIsRate);
}

}  // namespace

BENCHMARK(BM_BulkProcessing)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IndividualProcessing)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

STQ_BENCHMARK_MAIN()
