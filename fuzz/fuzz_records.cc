// Fuzzes the record payload decoders in stq/storage/records.cc.
//
// Input layout: [selector: 1 byte][payload: rest]. The selector picks the
// decoder. Every decoder must return a Status — ok or Corruption — and
// never crash, leak, over-read (ASan), or attempt an absurd allocation
// (the DecodeCommit count hazard). When a decode succeeds, re-encoding
// the decoded value and decoding it again must also succeed (the decoders
// accept everything the encoders emit).

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz_harness.h"
#include "stq/common/check.h"
#include "stq/storage/records.h"

namespace {

void CheckDecodesAfterReencode(const std::string& reencoded, int selector) {
  using namespace stq;
  Status s;
  switch (selector) {
    case 0: {
      PersistedObject o;
      s = DecodeObjectUpsert(reencoded, &o);
      break;
    }
    case 1: {
      ObjectId id = 0;
      s = DecodeObjectRemove(reencoded, &id);
      break;
    }
    case 2: {
      PersistedQuery q;
      s = DecodeQueryRegister(reencoded, &q);
      break;
    }
    case 3: {
      QueryId id = 0;
      Rect r;
      s = DecodeQueryMoveRect(reencoded, &id, &r);
      break;
    }
    case 4: {
      QueryId id = 0;
      Point p;
      s = DecodeQueryMoveCenter(reencoded, &id, &p);
      break;
    }
    case 5: {
      QueryId id = 0;
      s = DecodeQueryUnregister(reencoded, &id);
      break;
    }
    case 6: {
      PersistedCommit c;
      s = DecodeCommit(reencoded, &c);
      break;
    }
    default: {
      Timestamp t = 0.0;
      s = DecodeTick(reencoded, &t);
      break;
    }
  }
  STQ_CHECK(s.ok()) << "re-encoded payload failed to decode: " << s.ToString();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace stq;
  if (size == 0) return 0;
  const int selector = data[0] % 8;
  const std::string payload(reinterpret_cast<const char*>(data + 1), size - 1);

  std::string reencoded;
  Status s;
  switch (selector) {
    case 0: {
      PersistedObject o;
      s = DecodeObjectUpsert(payload, &o);
      if (s.ok()) EncodeObjectUpsert(o, &reencoded);
      break;
    }
    case 1: {
      ObjectId id = 0;
      s = DecodeObjectRemove(payload, &id);
      if (s.ok()) EncodeObjectRemove(id, &reencoded);
      break;
    }
    case 2: {
      PersistedQuery q;
      s = DecodeQueryRegister(payload, &q);
      if (s.ok()) EncodeQueryRegister(q, &reencoded);
      break;
    }
    case 3: {
      QueryId id = 0;
      Rect r;
      s = DecodeQueryMoveRect(payload, &id, &r);
      if (s.ok()) EncodeQueryMoveRect(id, r, &reencoded);
      break;
    }
    case 4: {
      QueryId id = 0;
      Point p;
      s = DecodeQueryMoveCenter(payload, &id, &p);
      if (s.ok()) EncodeQueryMoveCenter(id, p, &reencoded);
      break;
    }
    case 5: {
      QueryId id = 0;
      s = DecodeQueryUnregister(payload, &id);
      if (s.ok()) EncodeQueryUnregister(id, &reencoded);
      break;
    }
    case 6: {
      PersistedCommit c;
      s = DecodeCommit(payload, &c);
      if (s.ok()) EncodeCommit(c, &reencoded);
      break;
    }
    default: {
      Timestamp t = 0.0;
      s = DecodeTick(payload, &t);
      if (s.ok()) EncodeTick(t, &reencoded);
      break;
    }
  }
  STQ_CHECK(s.ok() || s.IsCorruption())
      << "decoder returned unexpected status: " << s.ToString();
  if (s.ok()) CheckDecodesAfterReencode(reencoded, selector);
  return 0;
}

void StqFuzzSeedCorpus(std::vector<std::string>* seeds) {
  using namespace stq;
  {
    PersistedObject o;
    o.id = 42;
    o.loc = Point{0.25, 0.5};
    o.vel = Velocity{0.01, -0.01};
    o.t = 7.0;
    o.predictive = true;
    std::string s(1, '\0');  // selector 0
    EncodeObjectUpsert(o, &s);
    seeds->push_back(s);
  }
  {
    std::string s(1, '\1');
    EncodeObjectRemove(42, &s);
    seeds->push_back(s);
  }
  {
    PersistedQuery q;
    q.id = 7;
    q.kind = QueryKind::kKnn;
    q.center = Point{0.5, 0.5};
    q.k = 3;
    q.owner = 1;
    std::string s(1, '\2');
    EncodeQueryRegister(q, &s);
    seeds->push_back(s);
  }
  {
    std::string s(1, '\3');
    EncodeQueryMoveRect(7, Rect{0.1, 0.1, 0.4, 0.4}, &s);
    seeds->push_back(s);
  }
  {
    std::string s(1, '\4');
    EncodeQueryMoveCenter(7, Point{0.9, 0.2}, &s);
    seeds->push_back(s);
  }
  {
    std::string s(1, '\5');
    EncodeQueryUnregister(7, &s);
    seeds->push_back(s);
  }
  {
    PersistedCommit c;
    c.id = 7;
    c.answer = {1, 2, 3, 42};
    std::string s(1, '\6');
    EncodeCommit(c, &s);
    seeds->push_back(s);
  }
  {
    std::string s(1, '\7');
    EncodeTick(12.5, &s);
    seeds->push_back(s);
  }
}
