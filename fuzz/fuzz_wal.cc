// Fuzzes LogReader over arbitrary byte streams.
//
// The input is written to a scratch file and read back as a WAL. The
// reader must terminate (eof, or a Corruption status for a bad CRC /
// implausible length) without crashing, over-reading, or looping forever
// — truncated tails are a clean end of log by contract.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "fuzz_harness.h"
#include "stq/common/check.h"
#include "stq/storage/wal.h"

namespace {

// One scratch file per process, rewritten for every input.
const std::string& ScratchPath() {
  static const std::string* path = [] {
    char tmpl[] = "/tmp/stq_fuzz_wal_XXXXXX";
    const int fd = mkstemp(tmpl);
    STQ_CHECK(fd >= 0) << "mkstemp failed";
    close(fd);
    return new std::string(tmpl);
  }();
  return *path;
}

void WriteScratch(const uint8_t* data, size_t size) {
  std::FILE* f = std::fopen(ScratchPath().c_str(), "wb");
  STQ_CHECK(f != nullptr);
  if (size > 0) {
    STQ_CHECK_EQ(std::fwrite(data, 1, size, f), size);
  }
  STQ_CHECK_EQ(std::fclose(f), 0);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  WriteScratch(data, size);

  stq::LogReader reader;
  STQ_CHECK_OK(reader.Open(ScratchPath()));
  size_t records = 0;
  for (;;) {
    uint8_t type = 0;
    std::string payload;
    bool eof = false;
    const stq::Status s = reader.ReadRecord(&type, &payload, &eof);
    if (!s.ok()) {
      STQ_CHECK(s.IsCorruption())
          << "reader returned unexpected status: " << s.ToString();
      break;
    }
    if (eof) break;
    ++records;
    // A frame is at least 9 bytes (8-byte header + type); the reader can
    // never produce more records than the input could frame.
    STQ_CHECK_LE(records, size / 9 + 1);
  }
  STQ_CHECK_OK(reader.Close());
  return 0;
}

void StqFuzzSeedCorpus(std::vector<std::string>* seeds) {
  // A well-formed two-record log (the interesting mutations are CRC and
  // length-field corruptions of valid frames).
  const std::string& path = ScratchPath();
  stq::LogWriter writer;
  STQ_CHECK_OK(writer.Open(path, /*truncate=*/true));
  STQ_CHECK_OK(writer.Append(1, "hello, wal"));
  STQ_CHECK_OK(writer.Append(2, std::string(100, '\xab')));
  STQ_CHECK_OK(writer.Close());

  std::FILE* f = std::fopen(path.c_str(), "rb");
  STQ_CHECK(f != nullptr);
  std::string log;
  char buf[4096];
  size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) log.append(buf, got);
  STQ_CHECK_EQ(std::fclose(f), 0);

  seeds->push_back(log);
  seeds->push_back(std::string());
  // An all-zero header claims a zero-length record with a zero CRC.
  seeds->push_back(std::string(16, '\0'));
}
