// Common contract between the fuzz targets and the standalone driver.
//
// Each fuzz_*.cc target defines:
//   - LLVMFuzzerTestOneInput: the libFuzzer entry point. Must return 0
//     and must not crash for ANY input; decoder failures are expressed as
//     Status errors, never UB.
//   - StqFuzzSeedCorpus: valid encodings the driver mutates from.
//
// Build modes (see fuzz/CMakeLists.txt):
//   - STQ_LIBFUZZER=ON (clang only): coverage-guided libFuzzer binary.
//   - default: the target links standalone_driver.cc, whose main()
//     replays a deterministic corpus — every seed, every truncated
//     prefix, seeded bit-flips, and random blobs — so the same checks run
//     under plain gcc builds and in CI on every PR.

#ifndef STQ_FUZZ_FUZZ_HARNESS_H_
#define STQ_FUZZ_FUZZ_HARNESS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

// Seed inputs: well-formed encodings for the target's decoders.
void StqFuzzSeedCorpus(std::vector<std::string>* seeds);

#endif  // STQ_FUZZ_FUZZ_HARNESS_H_
