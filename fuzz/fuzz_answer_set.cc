// Fuzzes the compressed answer set (AnswerSet) against a std::set oracle.
//
// The input is a little op program: each byte pair selects an operation
// and an id. Ids cluster so blocks cross the sparse<->dense hysteresis
// band constantly, and the program length pushes sets across the
// small<->blocked band in both directions — the regimes where a
// representation switch loses or duplicates members if it can. Every
// operation runs against both the codec and the oracle; return values,
// sizes, membership, full ascending contents and resident-byte sanity
// must agree at every step (via STQ_CHECK — a violation aborts).

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "fuzz_harness.h"
#include "stq/common/check.h"
#include "stq/core/answer_set.h"

namespace {

using stq::AnswerSet;
using stq::ObjectId;

// Ids span [0, 2047] (four 512-id blocks, dense regime) with occasional
// far-away ids putting one member per block. The op byte's unused high
// bits widen the universe past the small->blocked promote threshold so
// both whole-set hysteresis directions are reachable.
ObjectId IdFromBytes(uint8_t op, uint8_t b) {
  const ObjectId base =
      static_cast<ObjectId>(b & 63) |
      (static_cast<ObjectId>(op >> 3) << 6);  // 11 bits: 0..2047
  if ((b & 0xC0) == 0xC0) return base * 100003;  // sparse block per id
  return base;
}

void CheckAgainstOracle(const AnswerSet& set,
                        const std::set<ObjectId>& oracle) {
  STQ_CHECK(set.size() == oracle.size());
  auto it = oracle.begin();
  size_t visited = 0;
  for (ObjectId id : set) {
    STQ_CHECK(it != oracle.end());
    STQ_CHECK(id == *it);  // ascending iteration, exact contents
    ++it;
    ++visited;
  }
  STQ_CHECK(visited == oracle.size());
  // Resident-byte accounting stays callable and sane mid-history (the
  // tight compression bounds live in answer_set_test; capacity
  // high-water after a drain makes a hard upper bound here flaky).
  STQ_CHECK(set.bytes_resident() >= sizeof(AnswerSet));
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  AnswerSet set;
  std::set<ObjectId> oracle;

  for (size_t i = 0; i + 1 < size; i += 2) {
    const uint8_t op = data[i];
    const ObjectId id = IdFromBytes(op, data[i + 1]);
    switch (op % 8) {
      case 0:
      case 1:
      case 2: {  // insert (weighted up so sets actually grow)
        STQ_CHECK(set.insert(id) == oracle.insert(id).second);
        break;
      }
      case 3:
      case 4: {  // erase
        STQ_CHECK(set.erase(id) == (oracle.erase(id) > 0));
        break;
      }
      case 5: {  // membership probe
        STQ_CHECK(set.contains(id) == (oracle.count(id) == 1));
        break;
      }
      case 6: {  // copy round-trip mid-history; copy must not alias
        AnswerSet copy = set;
        CheckAgainstOracle(copy, oracle);
        copy.insert(id);
        copy.clear();
        CheckAgainstOracle(set, oracle);  // original untouched
        break;
      }
      default: {  // move round-trip; moved-to must equal the original
        AnswerSet moved = std::move(set);
        CheckAgainstOracle(moved, oracle);
        set = std::move(moved);
        break;
      }
    }
    STQ_CHECK(set.size() == oracle.size());
  }

  CheckAgainstOracle(set, oracle);
  return 0;
}

void StqFuzzSeedCorpus(std::vector<std::string>* seeds) {
  // Grow past the small->blocked promote line, then drain back through
  // the demote line: the whole-set hysteresis stress test.
  std::string churn;
  for (int k = 0; k < 600; ++k) {
    // op%8 == 0 (insert) with high bits spreading ids over 0..2047.
    churn.push_back(static_cast<char>(((k / 64) % 32) << 3));
    churn.push_back(static_cast<char>(k));
  }
  for (int k = 0; k < 600; ++k) {
    // op%8 == 3 (erase) over the same id sequence.
    churn.push_back(static_cast<char>((((k / 64) % 32) << 3) | 3));
    churn.push_back(static_cast<char>(k));
  }
  seeds->push_back(churn);

  // Dense-block churn: hammer one 64-id cluster so a single block
  // oscillates across the sparse<->dense band.
  std::string dense;
  for (int round = 0; round < 128; ++round) {
    dense.push_back(static_cast<char>(round % 3 == 2 ? 3 : 0));
    dense.push_back(static_cast<char>(round % 64));
  }
  seeds->push_back(dense);

  // Clones and moves interleaved with mutation.
  seeds->push_back(std::string("\x00\x01\x06\x00\x00\xc5\x07\x00\x03\x01"
                               "\x06\xff\x00\x85\x07\x02",
                               16));
  seeds->push_back(std::string());
}
