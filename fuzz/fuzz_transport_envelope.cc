// Fuzzes the transport envelope decoder (stq/core/transport.h) — the
// only decoder in the tree that parses bytes straight off the simulated
// wire, where the fault-injection transport truncates and corrupts them
// on purpose.
//
// Properties enforced (via STQ_CHECK — a violation aborts the harness):
//   - DecodeEnvelope returns OK or Corruption for ANY input; it never
//     crashes, and claimed element counts are rejected by bounds math
//     before any allocation is attempted,
//   - an accepted envelope is canonical: it re-encodes to the identical
//     byte string and decodes again to the same value.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fuzz_harness.h"
#include "stq/common/check.h"
#include "stq/core/transport.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string src(reinterpret_cast<const char*>(data), size);
  stq::Envelope env;
  const stq::Status status = stq::DecodeEnvelope(src, &env);
  STQ_CHECK(status.ok() || status.IsCorruption());
  if (!status.ok()) return 0;

  std::string reencoded;
  stq::EncodeEnvelope(env, &reencoded);
  STQ_CHECK(reencoded == src);

  stq::Envelope again;
  STQ_CHECK(stq::DecodeEnvelope(reencoded, &again).ok());
  STQ_CHECK(again.client == env.client);
  STQ_CHECK(again.seq == env.seq);
  STQ_CHECK(again.kind == env.kind);
  STQ_CHECK(again.updates == env.updates);
  STQ_CHECK(again.full_answers == env.full_answers);
  return 0;
}

void StqFuzzSeedCorpus(std::vector<std::string>* seeds) {
  {
    // A tick envelope with a mixed update stream.
    stq::Envelope env;
    env.client = 7;
    env.seq = 42;
    env.kind = stq::EnvelopeKind::kTick;
    env.tick_time = 3.5;
    env.updates = {stq::Update::Positive(1, 10), stq::Update::Negative(2, 20),
                   stq::Update::Positive(3, 30)};
    env.wire_bytes = 1234;
    std::string encoded;
    stq::EncodeEnvelope(env, &encoded);
    seeds->push_back(encoded);
  }
  {
    // A resync envelope carrying full answers (kFullAnswer recovery).
    stq::Envelope env;
    env.client = 9;
    env.seq = 100;
    env.kind = stq::EnvelopeKind::kResync;
    env.tick_time = 8.0;
    env.updates = {stq::Update::Positive(5, 50)};
    env.full_answers.emplace_back(4, std::vector<stq::ObjectId>{1, 2, 3});
    env.full_answers.emplace_back(5, std::vector<stq::ObjectId>{});
    env.wire_bytes = 99;
    std::string encoded;
    stq::EncodeEnvelope(env, &encoded);
    seeds->push_back(encoded);
  }
  {
    // An empty heartbeat — the smallest valid envelope on the wire.
    stq::Envelope env;
    env.client = 1;
    env.seq = 1;
    std::string encoded;
    stq::EncodeEnvelope(env, &encoded);
    seeds->push_back(encoded);
  }
}
