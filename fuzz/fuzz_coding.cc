// Fuzzes the cursor decoders in stq/storage/coding.h.
//
// Properties enforced (via STQ_CHECK — a violation aborts the harness):
//   - a decoder either consumes exactly its width or fails and leaves the
//     cursor untouched,
//   - no decoder ever reads past src.size() (ASan would flag it),
//   - offsets near SIZE_MAX are rejected (no size_t wrap-around),
//   - decode(encode(x)) round-trips bit-exactly for the fixed-width ints.

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "fuzz_harness.h"
#include "stq/common/check.h"
#include "stq/storage/coding.h"

using stq::GetByte;
using stq::GetDouble;
using stq::GetFixed32;
using stq::GetFixed64;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string src(reinterpret_cast<const char*>(data), size);

  // Walk the buffer, choosing the decoder width from the input itself so
  // the fuzzer explores interleavings. Stop on first underflow.
  size_t offset = 0;
  size_t steps = 0;
  while (offset < src.size() && steps < 4096) {
    const size_t before = offset;
    bool ok = false;
    switch (src[offset] & 3) {
      case 0: {
        uint8_t v = 0;
        ok = GetByte(src, &offset, &v);
        STQ_CHECK(!ok || offset == before + 1);
        break;
      }
      case 1: {
        uint32_t v = 0;
        ok = GetFixed32(src, &offset, &v);
        STQ_CHECK(!ok || offset == before + 4);
        break;
      }
      case 2: {
        uint64_t v = 0;
        ok = GetFixed64(src, &offset, &v);
        STQ_CHECK(!ok || offset == before + 8);
        break;
      }
      default: {
        double v = 0.0;
        ok = GetDouble(src, &offset, &v);
        STQ_CHECK(!ok || offset == before + 8);
        break;
      }
    }
    if (!ok) {
      // GetFixed64/GetDouble may have consumed a leading 32-bit half
      // before hitting the end; they never run past the buffer.
      STQ_CHECK(offset <= src.size());
      break;
    }
    ++steps;
  }

  // Hostile offsets: far past the end and near SIZE_MAX (the historical
  // overflow hazard). All decodes must fail without moving the cursor.
  const size_t hostile[] = {
      src.size() + 1, src.size() + 1000,
      std::numeric_limits<size_t>::max() - 7,
      std::numeric_limits<size_t>::max() - 3,
      std::numeric_limits<size_t>::max()};
  for (size_t start : hostile) {
    size_t cursor = start;
    uint8_t b = 0;
    STQ_CHECK(!GetByte(src, &cursor, &b));
    STQ_CHECK_EQ(cursor, start);
    uint32_t v32 = 0;
    STQ_CHECK(!GetFixed32(src, &cursor, &v32));
    STQ_CHECK_EQ(cursor, start);
    uint64_t v64 = 0;
    STQ_CHECK(!GetFixed64(src, &cursor, &v64));
    STQ_CHECK_EQ(cursor, start);
    double d = 0.0;
    STQ_CHECK(!GetDouble(src, &cursor, &d));
    STQ_CHECK_EQ(cursor, start);
  }

  // Round-trip: reinterpret the head of the input as integers and check
  // encode/decode is the identity.
  if (size >= 8) {
    size_t cursor = 0;
    uint64_t v = 0;
    STQ_CHECK(GetFixed64(src, &cursor, &v));
    std::string out;
    stq::PutFixed64(&out, v);
    STQ_CHECK_EQ(out, src.substr(0, 8));
  }
  return 0;
}

void StqFuzzSeedCorpus(std::vector<std::string>* seeds) {
  std::string all;
  stq::PutFixed32(&all, 0xDEADBEEF);
  stq::PutFixed64(&all, 0x0123456789ABCDEFull);
  stq::PutDouble(&all, -1234.5678);
  stq::PutByte(&all, 0x7F);
  stq::PutDouble(&all, std::numeric_limits<double>::infinity());
  stq::PutFixed32(&all, 0);
  seeds->push_back(all);
  seeds->push_back(std::string());
  seeds->push_back(std::string(64, '\xff'));
}
