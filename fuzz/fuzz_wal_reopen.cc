// Fuzzes Repository::Open over arbitrary WAL bytes.
//
// The input is installed as the WAL of an in-memory FaultInjectionEnv
// repository (with or without a preceding valid snapshot, chosen by the
// first input byte) and the repository is reopened. The recovery contract:
// Open() either succeeds or returns Corruption — never any other error,
// never a crash, hang, or over-read — and a successful Open leaves a
// fully usable repository (appends and a clean Close work).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fuzz_harness.h"
#include "stq/common/check.h"
#include "stq/storage/fault_env.h"
#include "stq/storage/records.h"
#include "stq/storage/repository.h"
#include "stq/storage/snapshot.h"

namespace {

constexpr char kDir[] = "/db";
constexpr char kWal[] = "/db/WAL";

void InstallFile(stq::FaultInjectionEnv* env, const std::string& path,
                 const uint8_t* data, size_t size) {
  std::unique_ptr<stq::WritableFile> file;
  STQ_CHECK_OK(env->NewWritableFile(path, /*truncate=*/true, &file));
  if (size > 0) {
    STQ_CHECK_OK(file->Append(reinterpret_cast<const char*>(data), size));
  }
  STQ_CHECK_OK(file->Sync());
  STQ_CHECK_OK(file->Close());
  STQ_CHECK_OK(env->SyncDir(kDir));
}

// A small valid snapshot so half the corpus exercises the snapshot-epoch
// vs WAL-epoch interaction.
void InstallSnapshot(stq::FaultInjectionEnv* env) {
  stq::PersistedState state;
  stq::PersistedObject o;
  o.id = 1;
  o.loc = stq::Point{0.5, 0.5};
  state.objects.push_back(o);
  state.last_tick = 1.0;
  STQ_CHECK_OK(stq::WriteSnapshot(env, "/db/SNAPSHOT", state, /*epoch=*/2));
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  stq::FaultInjectionEnv env;
  STQ_CHECK_OK(env.CreateDir(kDir));
  const bool with_snapshot = size > 0 && (data[0] & 1) != 0;
  if (size > 0) {
    --size;
    ++data;
  }
  if (with_snapshot) InstallSnapshot(&env);
  InstallFile(&env, kWal, data, size);

  stq::Repository repo(kDir, &env);
  const stq::Status s = repo.Open();
  STQ_CHECK(s.ok() || s.IsCorruption())
      << "Open must return OK or Corruption, got: " << s.ToString();
  if (s.ok()) {
    // Recovery must leave a writable repository behind: new records land
    // in the (possibly trimmed) WAL and a clean shutdown works.
    stq::PersistedObject o;
    o.id = 42;
    o.loc = stq::Point{0.25, 0.25};
    STQ_CHECK_OK(repo.LogObjectUpsert(o));
    STQ_CHECK_OK(repo.Sync());
    STQ_CHECK_OK(repo.Close());
  }
  return 0;
}

void StqFuzzSeedCorpus(std::vector<std::string>* seeds) {
  // An empty WAL and a lone epoch header.
  seeds->push_back("");
  {
    stq::FaultInjectionEnv env;
    STQ_CHECK_OK(env.CreateDir(kDir));
    stq::Repository repo(kDir, &env);
    STQ_CHECK_OK(repo.Open());
    STQ_CHECK_OK(repo.Close());
    seeds->push_back(std::string(1, '\0') + env.FileContentsForTest(kWal));
  }
  // A WAL with real traffic: upserts, a query, a commit, ticks — captured
  // from a live repository, prefixed with both snapshot choices.
  stq::FaultInjectionEnv env;
  STQ_CHECK_OK(env.CreateDir(kDir));
  stq::Repository repo(kDir, &env);
  STQ_CHECK_OK(repo.Open());
  stq::PersistedObject o;
  o.id = 7;
  o.loc = stq::Point{0.1, 0.9};
  STQ_CHECK_OK(repo.LogObjectUpsert(o));
  stq::PersistedQuery q;
  q.id = 3;
  q.kind = stq::QueryKind::kRange;
  q.region = stq::Rect{0.0, 0.0, 0.5, 0.5};
  q.owner = 1;
  STQ_CHECK_OK(repo.LogQueryRegister(q));
  STQ_CHECK_OK(repo.LogCommit(3, {7}));
  STQ_CHECK_OK(repo.LogTick(1.0));
  STQ_CHECK_OK(repo.Sync());
  STQ_CHECK_OK(repo.Close());
  const std::string wal = env.FileContentsForTest(kWal);
  seeds->push_back(std::string(1, '\0') + wal);
  seeds->push_back(std::string(1, '\1') + wal);
}
