// Standalone driver for the fuzz targets: replays a deterministic corpus
// through LLVMFuzzerTestOneInput so the harnesses run under plain gcc
// builds and on every CI run, without libFuzzer.
//
// Corpus, fully determined by the target's seeds and a fixed RNG seed:
//   1. every seed from StqFuzzSeedCorpus,
//   2. every truncated prefix of every seed,
//   3. kBitFlipsPerSeed single-bit corruptions of each seed,
//   4. kByteEditsPerSeed random byte overwrites of each seed,
//   5. kRandomBlobs unstructured random inputs.
//
// With file arguments it instead replays each file once (reproducer
// mode, mirroring libFuzzer's behavior for crash inputs).

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz_harness.h"
#include "stq/common/random.h"

namespace {

constexpr int kBitFlipsPerSeed = 256;
constexpr int kByteEditsPerSeed = 64;
constexpr int kRandomBlobs = 128;
constexpr size_t kMaxBlobSize = 512;

void RunOne(const std::string& input, size_t* executions) {
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(input.data()),
                         input.size());
  ++*executions;
}

int RunReproducers(int argc, char** argv) {
  size_t executions = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open reproducer %s\n", argv[i]);
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    RunOne(buf.str(), &executions);
    std::fprintf(stderr, "ran reproducer %s\n", argv[i]);
  }
  std::fprintf(stderr, "replayed %zu file(s) without crashing\n", executions);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) return RunReproducers(argc, argv);

  std::vector<std::string> seeds;
  StqFuzzSeedCorpus(&seeds);

  stq::Xorshift128Plus rng(0xC0FFEE5EEDull);
  size_t executions = 0;

  for (const std::string& seed : seeds) {
    RunOne(seed, &executions);
    for (size_t len = 0; len < seed.size(); ++len) {
      RunOne(seed.substr(0, len), &executions);
    }
    if (!seed.empty()) {
      for (int i = 0; i < kBitFlipsPerSeed; ++i) {
        std::string mutated = seed;
        const size_t pos = rng.NextUint64(mutated.size());
        mutated[pos] = static_cast<char>(
            static_cast<unsigned char>(mutated[pos]) ^
            (1u << rng.NextUint64(8)));
        RunOne(mutated, &executions);
      }
      for (int i = 0; i < kByteEditsPerSeed; ++i) {
        std::string mutated = seed;
        const size_t pos = rng.NextUint64(mutated.size());
        mutated[pos] = static_cast<char>(rng.NextUint64(256));
        RunOne(mutated, &executions);
      }
    }
  }

  for (int i = 0; i < kRandomBlobs; ++i) {
    std::string blob(rng.NextUint64(kMaxBlobSize + 1), '\0');
    for (char& c : blob) c = static_cast<char>(rng.NextUint64(256));
    RunOne(blob, &executions);
  }

  std::fprintf(stderr,
               "deterministic corpus done: %zu seeds, %zu executions, "
               "no crashes\n",
               seeds.size(), executions);
  return 0;
}
