// Fuzzes GridPartitionJoin against the bounds-clipped nested-loop oracle.
//
// Properties enforced (via STQ_CHECK — a violation aborts the harness):
//   - the grid join never crashes or trips UB for ANY decoded universe,
//     including zero-width/zero-height bounds, NaN/inf extents, and
//     points far outside the space (the historical NaN-cell-index bug),
//   - its output always equals the oracle: rects clipped to the bounds,
//     points outside the universe never matched, pairs sorted.

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "fuzz_harness.h"
#include "stq/common/check.h"
#include "stq/geo/rect.h"
#include "stq/grid/spatial_join.h"
#include "stq/storage/coding.h"

namespace {

// Oracle with the same contract as the grid path: rectangles clipped to
// the universe, so out-of-bounds points never match.
std::vector<stq::JoinPair> Oracle(const std::vector<stq::JoinPoint>& points,
                                  const std::vector<stq::JoinRect>& rects,
                                  const stq::Rect& bounds) {
  std::vector<stq::JoinPair> out;
  for (const stq::JoinRect& r : rects) {
    const stq::Rect region = r.region.Intersection(bounds);
    if (region.IsEmpty()) continue;
    for (const stq::JoinPoint& p : points) {
      if (region.Contains(p.loc)) out.push_back(stq::JoinPair{r.id, p.id});
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string src(reinterpret_cast<const char*>(data), size);
  size_t offset = 0;

  // Universe: four raw doubles — any bit pattern, including NaN/inf.
  double bx0 = 0, by0 = 0, bx1 = 0, by1 = 0;
  if (!stq::GetDouble(src, &offset, &bx0)) return 0;
  if (!stq::GetDouble(src, &offset, &by0)) return 0;
  if (!stq::GetDouble(src, &offset, &bx1)) return 0;
  if (!stq::GetDouble(src, &offset, &by1)) return 0;
  const stq::Rect bounds{bx0, by0, bx1, by1};
  // GridPartitionJoin's precondition; everything else is fair game.
  if (bounds.IsEmpty()) return 0;

  uint8_t cells = 0;
  if (!stq::GetByte(src, &offset, &cells)) return 0;
  const int cells_per_side = 1 + (cells & 31);

  uint8_t num_points = 0, num_rects = 0;
  if (!stq::GetByte(src, &offset, &num_points)) return 0;
  if (!stq::GetByte(src, &offset, &num_rects)) return 0;
  num_points &= 63;
  num_rects &= 31;

  std::vector<stq::JoinPoint> points;
  for (uint8_t i = 0; i < num_points; ++i) {
    double x = 0, y = 0;
    if (!stq::GetDouble(src, &offset, &x)) break;
    if (!stq::GetDouble(src, &offset, &y)) break;
    points.push_back(
        stq::JoinPoint{static_cast<stq::ObjectId>(i) + 1, stq::Point{x, y}});
  }
  std::vector<stq::JoinRect> rects;
  for (uint8_t i = 0; i < num_rects; ++i) {
    double x0 = 0, y0 = 0, x1 = 0, y1 = 0;
    if (!stq::GetDouble(src, &offset, &x0)) break;
    if (!stq::GetDouble(src, &offset, &y0)) break;
    if (!stq::GetDouble(src, &offset, &x1)) break;
    if (!stq::GetDouble(src, &offset, &y1)) break;
    rects.push_back(stq::JoinRect{static_cast<stq::QueryId>(i) + 1,
                                  stq::Rect{x0, y0, x1, y1}});
  }

  const std::vector<stq::JoinPair> got =
      stq::GridPartitionJoin(points, rects, bounds, cells_per_side);
  const std::vector<stq::JoinPair> want = Oracle(points, rects, bounds);
  STQ_CHECK(got == want);
  return 0;
}

void StqFuzzSeedCorpus(std::vector<std::string>* seeds) {
  const auto encode = [](double bx0, double by0, double bx1, double by1,
                         uint8_t cells,
                         const std::vector<std::pair<double, double>>& pts,
                         const std::vector<std::array<double, 4>>& rcts) {
    std::string s;
    stq::PutDouble(&s, bx0);
    stq::PutDouble(&s, by0);
    stq::PutDouble(&s, bx1);
    stq::PutDouble(&s, by1);
    stq::PutByte(&s, cells);
    stq::PutByte(&s, static_cast<uint8_t>(pts.size()));
    stq::PutByte(&s, static_cast<uint8_t>(rcts.size()));
    for (const auto& p : pts) {
      stq::PutDouble(&s, p.first);
      stq::PutDouble(&s, p.second);
    }
    for (const auto& r : rcts) {
      stq::PutDouble(&s, r[0]);
      stq::PutDouble(&s, r[1]);
      stq::PutDouble(&s, r[2]);
      stq::PutDouble(&s, r[3]);
    }
    return s;
  };

  // A healthy unit universe with a few points and rects.
  seeds->push_back(encode(0, 0, 1, 1, 8,
                          {{0.25, 0.25}, {0.75, 0.75}, {1.5, 0.5}},
                          {{0.0, 0.0, 0.5, 0.5}, {0.4, 0.4, 1.0, 1.0}}));
  // The historical bug: a zero-width (vertical line) universe.
  seeds->push_back(encode(0.5, 0.0, 0.5, 1.0, 8,
                          {{0.5, 0.5}, {0.4, 0.5}},
                          {{0.0, 0.0, 1.0, 1.0}}));
  // Zero-height and point universes.
  seeds->push_back(encode(0.0, 0.5, 1.0, 0.5, 4, {{0.5, 0.5}},
                          {{0.0, 0.0, 1.0, 1.0}}));
  seeds->push_back(encode(0.5, 0.5, 0.5, 0.5, 16, {{0.5, 0.5}},
                          {{0.0, 0.0, 1.0, 1.0}}));
  // Infinite extent — the index arithmetic must bail to the fallback.
  const double inf = std::numeric_limits<double>::infinity();
  seeds->push_back(encode(-inf, 0.0, inf, 1.0, 8, {{0.5, 0.5}},
                          {{0.0, 0.0, 1.0, 1.0}}));
  seeds->push_back(std::string());
}
