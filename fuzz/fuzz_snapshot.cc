// Fuzzes ReadSnapshot over arbitrary byte streams.
//
// The input is written to a scratch file and loaded as a snapshot. The
// reader must return OK or Corruption — never crash or over-read. When a
// mutated snapshot still loads, writing the loaded state out and reading
// it back must succeed with the same record counts (the writer only
// emits what the reader accepts).

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "fuzz_harness.h"
#include "stq/common/check.h"
#include "stq/storage/snapshot.h"

namespace {

const std::string& ScratchPath(int which) {
  static const std::string* paths[2] = {nullptr, nullptr};
  if (paths[which] == nullptr) {
    char tmpl[] = "/tmp/stq_fuzz_snapshot_XXXXXX";
    const int fd = mkstemp(tmpl);
    STQ_CHECK(fd >= 0) << "mkstemp failed";
    close(fd);
    paths[which] = new std::string(tmpl);
  }
  return *paths[which];
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  {
    std::FILE* f = std::fopen(ScratchPath(0).c_str(), "wb");
    STQ_CHECK(f != nullptr);
    if (size > 0) STQ_CHECK_EQ(std::fwrite(data, 1, size, f), size);
    STQ_CHECK_EQ(std::fclose(f), 0);
  }

  stq::PersistedState state;
  const stq::Status s = stq::ReadSnapshot(ScratchPath(0), &state);
  if (!s.ok()) {
    STQ_CHECK(s.IsCorruption())
        << "reader returned unexpected status: " << s.ToString();
    return 0;
  }

  // Round-trip whatever survived.
  STQ_CHECK_OK(stq::WriteSnapshot(ScratchPath(1), state));
  stq::PersistedState reloaded;
  STQ_CHECK_OK(stq::ReadSnapshot(ScratchPath(1), &reloaded));
  STQ_CHECK_EQ(reloaded.objects.size(), state.objects.size());
  STQ_CHECK_EQ(reloaded.queries.size(), state.queries.size());
  STQ_CHECK_EQ(reloaded.commits.size(), state.commits.size());
  return 0;
}

void StqFuzzSeedCorpus(std::vector<std::string>* seeds) {
  stq::PersistedState state;
  stq::PersistedObject o;
  o.id = 1;
  o.loc = stq::Point{0.25, 0.75};
  o.t = 3.0;
  state.objects.push_back(o);
  stq::PersistedQuery q;
  q.id = 9;
  q.kind = stq::QueryKind::kRange;
  q.region = stq::Rect{0.1, 0.1, 0.6, 0.6};
  q.owner = 2;
  state.queries.push_back(q);
  stq::PersistedCommit c;
  c.id = 9;
  c.answer = {1};
  state.commits.push_back(c);
  state.last_tick = 4.5;
  STQ_CHECK_OK(stq::WriteSnapshot(ScratchPath(0), state));

  std::FILE* f = std::fopen(ScratchPath(0).c_str(), "rb");
  STQ_CHECK(f != nullptr);
  std::string snapshot;
  char buf[4096];
  size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    snapshot.append(buf, got);
  }
  STQ_CHECK_EQ(std::fclose(f), 0);

  seeds->push_back(snapshot);
  seeds->push_back(std::string());
}
