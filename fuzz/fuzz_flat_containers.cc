// Fuzzes FlatMap / FlatSet / SmallVector against their std counterparts.
//
// The input is interpreted as a little op program: each byte pair selects
// an operation and a key drawn from a small universe (so inserts, erases,
// probes and rehashes collide constantly — the regime where open
// addressing with backward-shift deletion goes wrong if it can go wrong).
// Every operation runs against both the flat container and a std oracle;
// return values, sizes, membership and full contents must agree at every
// step (via STQ_CHECK — a violation aborts the harness). Copy and move
// round-trips are exercised in-program so clones are checked mid-history,
// not just at quiescence.

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "fuzz_harness.h"
#include "stq/common/check.h"
#include "stq/common/flat_hash.h"
#include "stq/common/ids.h"
#include "stq/common/small_vector.h"

namespace {

using stq::FlatMap;
using stq::FlatSet;
using stq::ObjectId;
using stq::SmallVector;

// Keys cluster in [1, 64] with an occasional far-away key so the id mixer
// sees both dense and sparse patterns. Key 0 stays valid too.
uint64_t KeyFromByte(uint8_t b) {
  const uint64_t base = b & 63;
  if ((b & 0xC0) == 0xC0) return base * 0x9E3779B97F4A7C15ull;  // sparse
  return base;
}

void CheckMapAgainstOracle(const FlatMap<ObjectId, uint32_t>& map,
                           const std::map<uint64_t, uint32_t>& oracle) {
  STQ_CHECK(map.size() == oracle.size());
  size_t visited = 0;
  for (const auto& [key, value] : map) {
    const auto it = oracle.find(static_cast<uint64_t>(key));
    STQ_CHECK(it != oracle.end());
    STQ_CHECK(it->second == value);
    ++visited;
  }
  STQ_CHECK(visited == oracle.size());
  for (const auto& [key, value] : oracle) {
    const uint32_t* found = map.FindPtr(static_cast<ObjectId>(key));
    STQ_CHECK(found != nullptr);
    STQ_CHECK(*found == value);
  }
}

void CheckSetAgainstOracle(const FlatSet<ObjectId>& set,
                           const std::map<uint64_t, bool>& oracle) {
  STQ_CHECK(set.size() == oracle.size());
  size_t visited = 0;
  for (ObjectId key : set) {
    STQ_CHECK(oracle.count(static_cast<uint64_t>(key)) == 1);
    ++visited;
  }
  STQ_CHECK(visited == oracle.size());
  for (const auto& [key, unused] : oracle) {
    STQ_CHECK(set.contains(static_cast<ObjectId>(key)));
  }
}

void CheckVecAgainstOracle(const SmallVector<uint32_t, 4>& vec,
                           const std::vector<uint32_t>& oracle) {
  STQ_CHECK(vec.size() == oracle.size());
  STQ_CHECK(std::equal(vec.begin(), vec.end(), oracle.begin()));
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  FlatMap<ObjectId, uint32_t> map;
  std::map<uint64_t, uint32_t> map_oracle;
  FlatSet<ObjectId> set;
  std::map<uint64_t, bool> set_oracle;
  SmallVector<uint32_t, 4> vec;
  std::vector<uint32_t> vec_oracle;

  uint32_t tick = 0;  // value payload; makes stale-slot reuse visible
  for (size_t i = 0; i + 1 < size; i += 2) {
    const uint8_t op = data[i];
    const uint8_t arg = data[i + 1];
    const uint64_t key = KeyFromByte(arg);
    const ObjectId id = static_cast<ObjectId>(key);
    ++tick;
    switch (op % 16) {
      case 0: {  // map try_emplace
        const bool inserted = map.try_emplace(id, tick).second;
        const bool want = map_oracle.emplace(key, tick).second;
        STQ_CHECK(inserted == want);
        break;
      }
      case 1: {  // map insert_or_assign
        const bool inserted = map.insert_or_assign(id, tick).second;
        const bool want = !map_oracle.count(key);
        map_oracle[key] = tick;
        STQ_CHECK(inserted == want);
        break;
      }
      case 2: {  // map operator[] increment
        map[id] += arg;
        map_oracle[key] += arg;
        break;
      }
      case 3: {  // map erase by key
        STQ_CHECK(map.erase(id) == map_oracle.erase(key));
        break;
      }
      case 4: {  // map point lookup
        const uint32_t* found = map.FindPtr(id);
        const auto it = map_oracle.find(key);
        STQ_CHECK((found != nullptr) == (it != map_oracle.end()));
        if (found != nullptr) STQ_CHECK(*found == it->second);
        STQ_CHECK(map.contains(id) == (it != map_oracle.end()));
        break;
      }
      case 5: {  // set insert
        STQ_CHECK(set.insert(id).second == set_oracle.emplace(key, true).second);
        break;
      }
      case 6: {  // set erase
        STQ_CHECK(set.erase(id) == set_oracle.erase(key));
        break;
      }
      case 7: {  // set membership
        STQ_CHECK(set.contains(id) == (set_oracle.count(key) == 1));
        STQ_CHECK(set.count(id) == set_oracle.count(key));
        break;
      }
      case 8: {  // vector push_back
        vec.push_back(tick);
        vec_oracle.push_back(tick);
        break;
      }
      case 9: {  // vector pop_back
        if (!vec_oracle.empty()) {
          STQ_CHECK(vec.back() == vec_oracle.back());
          vec.pop_back();
          vec_oracle.pop_back();
        }
        break;
      }
      case 10: {  // vector positional insert / erase
        if (vec_oracle.empty() || (arg & 1)) {
          const size_t pos = vec_oracle.empty() ? 0 : arg % (vec_oracle.size() + 1);
          vec.insert(vec.begin() + pos, tick);
          vec_oracle.insert(vec_oracle.begin() + pos, tick);
        } else {
          const size_t pos = arg % vec_oracle.size();
          vec.erase(vec.begin() + pos);
          vec_oracle.erase(vec_oracle.begin() + pos);
        }
        break;
      }
      case 11: {  // clear one container (scratch-reuse pattern)
        switch (arg % 3) {
          case 0: map.clear(); map_oracle.clear(); break;
          case 1: set.clear(); set_oracle.clear(); break;
          default: vec.clear(); vec_oracle.clear(); break;
        }
        break;
      }
      case 12: {  // reserve (must be content-neutral)
        map.reserve(arg);
        set.reserve(arg);
        vec.reserve(arg % 128);
        break;
      }
      case 13: {  // copy round-trip mid-history
        FlatMap<ObjectId, uint32_t> map_copy = map;
        CheckMapAgainstOracle(map_copy, map_oracle);
        FlatSet<ObjectId> set_copy = set;
        CheckSetAgainstOracle(set_copy, set_oracle);
        SmallVector<uint32_t, 4> vec_copy = vec;
        CheckVecAgainstOracle(vec_copy, vec_oracle);
        break;
      }
      case 14: {  // move round-trip; moved-to must equal the original
        FlatSet<ObjectId> moved = std::move(set);
        CheckSetAgainstOracle(moved, set_oracle);
        set = std::move(moved);
        SmallVector<uint32_t, 4> vmoved = std::move(vec);
        CheckVecAgainstOracle(vmoved, vec_oracle);
        vec = std::move(vmoved);
        break;
      }
      default: {  // vector resize
        const size_t n = arg % 64;
        vec.resize(n);
        vec_oracle.resize(n);
        break;
      }
    }
    STQ_CHECK(map.size() == map_oracle.size());
    STQ_CHECK(set.size() == set_oracle.size());
    STQ_CHECK(vec.size() == vec_oracle.size());
  }

  CheckMapAgainstOracle(map, map_oracle);
  CheckSetAgainstOracle(set, set_oracle);
  CheckVecAgainstOracle(vec, vec_oracle);
  return 0;
}

void StqFuzzSeedCorpus(std::vector<std::string>* seeds) {
  // Insert/erase churn on a colliding key range: the backward-shift
  // deletion stress test.
  std::string churn;
  for (int round = 0; round < 64; ++round) {
    churn.push_back(static_cast<char>(round % 2 == 0 ? 0 : 3));  // map ins/del
    churn.push_back(static_cast<char>(round * 7));
    churn.push_back(static_cast<char>(round % 2 == 0 ? 5 : 6));  // set ins/del
    churn.push_back(static_cast<char>(round * 11));
  }
  seeds->push_back(churn);

  // Growth past every rehash boundary, then drain.
  std::string grow;
  for (int k = 0; k < 200; ++k) {
    grow.push_back(0);
    grow.push_back(static_cast<char>(k));
  }
  for (int k = 0; k < 200; ++k) {
    grow.push_back(3);
    grow.push_back(static_cast<char>(k));
  }
  seeds->push_back(grow);

  // SmallVector inline->heap spill and positional churn.
  std::string spill;
  for (int k = 0; k < 32; ++k) {
    spill.push_back(8);
    spill.push_back(static_cast<char>(k));
    spill.push_back(10);
    spill.push_back(static_cast<char>(k * 3));
  }
  spill.push_back(13);
  spill.push_back(0);
  seeds->push_back(spill);

  // Clones and moves interleaved with mutation.
  seeds->push_back(std::string("\x00\x01\x0d\x00\x05\x02\x0e\x00\x02\x03"
                               "\x0d\x00\x03\x01\x0e\x00\x0b\x00",
                               18));
  seeds->push_back(std::string());
}
